//! Agglomerative hierarchical clustering with single, complete, or
//! average linkage. Produces a dendrogram ([`crate::tree::TreeModel`])
//! and a flat clustering by cutting the merge sequence at `k` clusters.

use super::{check_clusterable, Clusterer, DistanceSpace};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use crate::tree::TreeModel;
use dm_data::Dataset;

/// Cluster-to-cluster distance definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// The agglomerative clusterer. Stores the training rows (like all
/// hierarchical methods, the model is the merge history over the data).
#[derive(Debug, Clone)]
pub struct Hierarchical {
    /// `-N`: number of flat clusters after cutting.
    k: usize,
    /// `-L`: linkage.
    linkage: Linkage,
    space: DistanceSpace,
    /// Stored training data (needed to place new instances).
    train: Option<Dataset>,
    /// Flat assignment of each training row.
    assignments: Vec<usize>,
    /// Merge history `(left_id, right_id, distance)`; ids `< n` are
    /// rows, ids `>= n` refer to earlier merges.
    merges: Vec<(usize, usize, f64)>,
    built: bool,
}

impl Default for Hierarchical {
    fn default() -> Self {
        Hierarchical {
            k: 2,
            linkage: Linkage::Average,
            space: DistanceSpace::default(),
            train: None,
            assignments: Vec::new(),
            merges: Vec::new(),
            built: false,
        }
    }
}

impl Hierarchical {
    /// Create with defaults (2 clusters, average linkage).
    pub fn new() -> Hierarchical {
        Hierarchical::default()
    }

    /// Create with an explicit cut size and linkage.
    pub fn with_k(k: usize, linkage: Linkage) -> Hierarchical {
        Hierarchical {
            k: k.max(1),
            linkage,
            ..Hierarchical::default()
        }
    }

    /// Flat assignments of the training rows.
    pub fn training_assignments(&self) -> &[usize] {
        &self.assignments
    }

    fn linkage_distance(&self, d: &[Vec<f64>], a: &[usize], b: &[usize]) -> f64 {
        let mut acc: f64 = match self.linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => 0.0,
            Linkage::Average => 0.0,
        };
        for &i in a {
            for &j in b {
                let x = d[i][j];
                match self.linkage {
                    Linkage::Single => acc = acc.min(x),
                    Linkage::Complete => acc = acc.max(x),
                    Linkage::Average => acc += x,
                }
            }
        }
        if self.linkage == Linkage::Average {
            acc / (a.len() * b.len()) as f64
        } else {
            acc
        }
    }
}

impl Clusterer for Hierarchical {
    fn name(&self) -> &'static str {
        "HierarchicalClusterer"
    }

    fn build(&mut self, data: &Dataset) -> Result<()> {
        check_clusterable(data)?;
        let n = data.num_instances();
        if self.k > n {
            return Err(AlgoError::Unsupported(format!(
                "k = {} exceeds {n} instances",
                self.k
            )));
        }
        self.space = DistanceSpace::fit(data);

        // Pairwise distance matrix (O(n²) memory — fine for the corpus
        // sizes this toolkit targets; documented).
        let mut d = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let x = self.space.distance_rows(data, i, data, j);
                d[i][j] = x;
                d[j][i] = x;
            }
        }

        // Active clusters: (id, member rows).
        let mut clusters: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
        let mut next_id = n;
        self.merges.clear();
        while clusters.len() > 1 {
            let mut best = (0usize, 1usize, f64::INFINITY);
            for a in 0..clusters.len() {
                for b in (a + 1)..clusters.len() {
                    let dist = self.linkage_distance(&d, &clusters[a].1, &clusters[b].1);
                    if dist < best.2 {
                        best = (a, b, dist);
                    }
                }
            }
            let (a, b, dist) = best;
            let (id_b, rows_b) = clusters.remove(b);
            let (id_a, rows_a) = clusters.remove(a);
            self.merges.push((id_a, id_b, dist));
            let mut merged = rows_a;
            merged.extend(rows_b);
            clusters.push((next_id, merged));
            next_id += 1;

            if clusters.len() == self.k {
                // Record the flat cut.
                self.assignments = vec![0; n];
                for (c, (_, rows)) in clusters.iter().enumerate() {
                    for &r in rows {
                        self.assignments[r] = c;
                    }
                }
            }
        }
        if self.k == 1 {
            self.assignments = vec![0; n];
        }
        self.train = Some(data.clone());
        self.built = true;
        Ok(())
    }

    fn cluster_instance(&self, data: &Dataset, row: usize) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        let train = self.train.as_ref().expect("built");
        // Nearest training row's flat cluster.
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for r in 0..train.num_instances() {
            let dist = self.space.distance_rows(data, row, train, r);
            if dist < best_d {
                best_d = dist;
                best = r;
            }
        }
        Ok(self.assignments[best])
    }

    fn num_clusters(&self) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.k)
    }

    fn describe(&self) -> String {
        if !self.built {
            return "Hierarchical: not built".to_string();
        }
        format!(
            "Agglomerative clustering ({:?} linkage), {} merges, cut at {} clusters",
            self.linkage,
            self.merges.len(),
            self.k
        )
    }

    fn tree_model(&self) -> Option<TreeModel> {
        if !self.built {
            return None;
        }
        let n = self.train.as_ref()?.num_instances();
        let mut model = TreeModel::new();
        // Build from the last merge (the root) downward.
        fn add(
            merges: &[(usize, usize, f64)],
            n: usize,
            id: usize,
            edge: String,
            model: &mut TreeModel,
        ) -> usize {
            if id < n {
                model.add_node(format!("row {id}"), edge, true)
            } else {
                let (a, b, dist) = merges[id - n];
                let node = model.add_node(format!("merge @ {dist:.4}"), edge, false);
                let left = add(merges, n, a, "left".into(), model);
                let right = add(merges, n, b, "right".into(), model);
                model.add_child(node, left);
                model.add_child(node, right);
                node
            }
        }
        if self.merges.is_empty() {
            model.add_node("singleton", "", true);
        } else {
            let root_id = n + self.merges.len() - 1;
            add(&self.merges, n, root_id, String::new(), &mut model);
        }
        Some(model)
    }
}

impl Configurable for Hierarchical {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-N",
                name: "numClusters",
                description: "number of flat clusters after cutting the dendrogram",
                default: "2".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 100_000,
                },
            },
            OptionDescriptor {
                flag: "-L",
                name: "linkage",
                description: "cluster linkage",
                default: "average".into(),
                kind: OptionKind::Choice(vec![
                    "single".into(),
                    "complete".into(),
                    "average".into(),
                ]),
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-N" => self.k = value.parse().expect("validated"),
            "-L" => {
                self.linkage = match value {
                    "single" => Linkage::Single,
                    "complete" => Linkage::Complete,
                    _ => Linkage::Average,
                }
            }
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-N" => Ok(self.k.to_string()),
            "-L" => Ok(match self.linkage {
                Linkage::Single => "single",
                Linkage::Complete => "complete",
                Linkage::Average => "average",
            }
            .to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for Hierarchical {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k);
        w.put_u64(match self.linkage {
            Linkage::Single => 0,
            Linkage::Complete => 1,
            Linkage::Average => 2,
        });
        w.put_bool(self.built);
        if self.built {
            self.space.encode(&mut w);
            w.put_usize_slice(&self.assignments);
            w.put_usize(self.merges.len());
            for (a, b, d) in &self.merges {
                w.put_usize(*a);
                w.put_usize(*b);
                w.put_f64(*d);
            }
            // Training data as ARFF text (schema + rows round-trip).
            let train = self.train.as_ref().expect("built");
            w.put_str(&dm_data::arff::write_arff(train));
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k = r.get_usize()?;
        self.linkage = match r.get_u64()? {
            0 => Linkage::Single,
            1 => Linkage::Complete,
            2 => Linkage::Average,
            tag => return Err(AlgoError::BadState(format!("bad linkage tag {tag}"))),
        };
        self.built = r.get_bool()?;
        if self.built {
            self.space = DistanceSpace::decode(&mut r)?;
            self.assignments = r.get_usize_vec()?;
            let n = r.get_usize()?;
            if n > 1 << 24 {
                return Err(AlgoError::BadState("absurd merge count".into()));
            }
            self.merges = (0..n)
                .map(|_| -> Result<(usize, usize, f64)> {
                    Ok((r.get_usize()?, r.get_usize()?, r.get_f64()?))
                })
                .collect::<Result<_>>()?;
            let arff = r.get_str()?;
            self.train = Some(
                dm_data::arff::parse_arff(&arff)
                    .map_err(|e| AlgoError::BadState(format!("embedded ARFF: {e}")))?,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::rand_index;
    use super::*;
    use dm_data::corpus::{gaussian_blobs, BlobSpec};

    fn small_blobs() -> Dataset {
        gaussian_blobs(
            &[
                BlobSpec {
                    center: vec![0.0, 0.0],
                    stddev: 0.3,
                    count: 15,
                },
                BlobSpec {
                    center: vec![10.0, 0.0],
                    stddev: 0.3,
                    count: 15,
                },
                BlobSpec {
                    center: vec![0.0, 10.0],
                    stddev: 0.3,
                    count: 15,
                },
            ],
            7,
        )
    }

    #[test]
    fn average_linkage_recovers_blobs() {
        let ds = small_blobs();
        let mut h = Hierarchical::with_k(3, Linkage::Average);
        h.build(&ds).unwrap();
        let ri = rand_index(&ds, h.training_assignments());
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn single_and_complete_linkage_work() {
        let ds = small_blobs();
        for linkage in [Linkage::Single, Linkage::Complete] {
            let mut h = Hierarchical::with_k(3, linkage);
            h.build(&ds).unwrap();
            let ri = rand_index(&ds, h.training_assignments());
            assert!(ri > 0.9, "{linkage:?} rand index {ri}");
        }
    }

    #[test]
    fn dendrogram_has_all_rows_as_leaves() {
        let ds = small_blobs();
        let mut h = Hierarchical::with_k(2, Linkage::Average);
        h.build(&ds).unwrap();
        let t = h.tree_model().unwrap();
        assert_eq!(t.num_leaves(), ds.num_instances());
    }

    #[test]
    fn new_instances_placed_by_nearest_neighbour() {
        let ds = small_blobs();
        let mut h = Hierarchical::with_k(3, Linkage::Average);
        h.build(&ds).unwrap();
        // A point near blob 1's centre clusters with row 15's cluster.
        let mut probe = ds.header_clone();
        probe.push_row(vec![10.0, 0.0, f64::NAN]).unwrap();
        let c = h.cluster_instance(&probe, 0).unwrap();
        assert_eq!(c, h.training_assignments()[15]);
    }

    #[test]
    fn state_roundtrip() {
        let ds = small_blobs();
        let mut h = Hierarchical::with_k(3, Linkage::Complete);
        h.build(&ds).unwrap();
        let mut h2 = Hierarchical::new();
        h2.decode_state(&h.encode_state()).unwrap();
        assert_eq!(h.training_assignments(), h2.training_assignments());
        assert_eq!(h2.num_clusters().unwrap(), 3);
    }

    #[test]
    fn unbuilt_errors() {
        let ds = small_blobs();
        assert!(Hierarchical::new().cluster_instance(&ds, 0).is_err());
        assert!(Hierarchical::new().tree_model().is_none());
    }

    #[test]
    fn k1_puts_everything_together() {
        let ds = small_blobs();
        let mut h = Hierarchical::with_k(1, Linkage::Average);
        h.build(&ds).unwrap();
        assert!(h.training_assignments().iter().all(|&c| c == 0));
    }
}
