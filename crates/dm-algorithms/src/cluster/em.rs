//! EM: expectation–maximisation over a diagonal Gaussian mixture for
//! numeric attributes and per-cluster multinomials (Laplace-smoothed)
//! for nominal attributes — WEKA's `EM` with a fixed cluster count.

use super::{check_clusterable, Clusterer, DistanceSpace, KMeans};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};

/// Per-cluster, per-attribute model.
#[derive(Debug, Clone, PartialEq)]
enum AttrModel {
    Gaussian { mean: f64, sd: f64 },
    Multinomial(Vec<f64>),
    Skip,
}

const MIN_SD: f64 = 1e-3;

/// The EM mixture clusterer.
#[derive(Debug, Clone)]
pub struct EM {
    /// `-N`: number of mixture components.
    k: usize,
    /// `-I`: EM iterations.
    iterations: usize,
    /// `-S`: seed (used by the k-means initialisation).
    seed: u64,
    weights: Vec<f64>,
    models: Vec<Vec<AttrModel>>,
    space: DistanceSpace,
    log_likelihood: f64,
    built: bool,
}

impl Default for EM {
    fn default() -> Self {
        EM {
            k: 2,
            iterations: 20,
            seed: 100,
            weights: Vec::new(),
            models: Vec::new(),
            space: DistanceSpace::default(),
            log_likelihood: f64::NEG_INFINITY,
            built: false,
        }
    }
}

impl EM {
    /// Create with defaults (2 components).
    pub fn new() -> EM {
        EM::default()
    }

    /// Create with an explicit component count.
    pub fn with_k(k: usize) -> EM {
        EM {
            k: k.max(1),
            ..EM::default()
        }
    }

    /// Final training log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    fn log_density(&self, data: &Dataset, row: usize, c: usize) -> f64 {
        let mut lp = self.weights[c].max(1e-12).ln();
        for (a, m) in self.models[c].iter().enumerate() {
            let v = data.value(row, a);
            if Value::is_missing(v) {
                continue;
            }
            match m {
                AttrModel::Gaussian { mean, sd } => {
                    let z = (v - mean) / sd;
                    lp += -0.5 * z * z - sd.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
                }
                AttrModel::Multinomial(p) => {
                    let i = Value::as_index(v);
                    if i < p.len() {
                        lp += p[i].max(1e-12).ln();
                    }
                }
                AttrModel::Skip => {}
            }
        }
        lp
    }

    fn responsibilities(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let logs: Vec<f64> = (0..self.k)
            .map(|c| self.log_density(data, row, c))
            .collect();
        let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut r: Vec<f64> = logs.iter().map(|&l| (l - max).exp()).collect();
        let total: f64 = r.iter().sum();
        if total > 0.0 {
            for x in r.iter_mut() {
                *x /= total;
            }
        }
        r
    }
}

impl Clusterer for EM {
    fn name(&self) -> &'static str {
        "EM"
    }

    fn build(&mut self, data: &Dataset) -> Result<()> {
        check_clusterable(data)?;
        let n = data.num_instances();
        if self.k > n {
            return Err(AlgoError::Unsupported(format!(
                "k = {} exceeds {n} instances",
                self.k
            )));
        }
        self.space = DistanceSpace::fit(data);

        // Initialise responsibilities from a k-means hard assignment.
        let mut km = KMeans::with_k(self.k);
        km.set_option("-S", &self.seed.to_string())?;
        km.build(data)?;
        let mut resp: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                let mut v = vec![0.05 / (self.k.max(2) - 1) as f64; self.k];
                let c = km.cluster_instance(data, r).expect("built");
                v[c] = 0.95;
                v
            })
            .collect();

        let n_attrs = data.num_attributes();
        for _iter in 0..self.iterations {
            // M step.
            self.weights = (0..self.k)
                .map(|c| resp.iter().map(|r| r[c]).sum::<f64>() / n as f64)
                .collect();
            self.models = (0..self.k)
                .map(|c| {
                    (0..n_attrs)
                        .map(|a| {
                            if self.space.skip[a] {
                                return AttrModel::Skip;
                            }
                            if self.space.nominal[a] {
                                let arity = data.attributes()[a].num_labels();
                                let mut counts = vec![1.0f64; arity]; // Laplace
                                let mut total = arity as f64;
                                for r in 0..n {
                                    let v = data.value(r, a);
                                    if !Value::is_missing(v) {
                                        counts[Value::as_index(v)] += resp[r][c];
                                        total += resp[r][c];
                                    }
                                }
                                for x in counts.iter_mut() {
                                    *x /= total;
                                }
                                AttrModel::Multinomial(counts)
                            } else {
                                let mut sum = 0.0;
                                let mut wsum = 0.0;
                                for r in 0..n {
                                    let v = data.value(r, a);
                                    if !Value::is_missing(v) {
                                        sum += resp[r][c] * v;
                                        wsum += resp[r][c];
                                    }
                                }
                                let mean = if wsum > 0.0 { sum / wsum } else { 0.0 };
                                let mut ss = 0.0;
                                for r in 0..n {
                                    let v = data.value(r, a);
                                    if !Value::is_missing(v) {
                                        ss += resp[r][c] * (v - mean) * (v - mean);
                                    }
                                }
                                let sd = if wsum > 0.0 {
                                    (ss / wsum).sqrt().max(MIN_SD)
                                } else {
                                    MIN_SD
                                };
                                AttrModel::Gaussian { mean, sd }
                            }
                        })
                        .collect()
                })
                .collect();
            self.built = true;

            // E step.
            let mut ll = 0.0;
            for (r, rr) in resp.iter_mut().enumerate() {
                let logs: Vec<f64> = (0..self.k).map(|c| self.log_density(data, r, c)).collect();
                let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut e: Vec<f64> = logs.iter().map(|&l| (l - max).exp()).collect();
                let total: f64 = e.iter().sum();
                ll += max + total.ln();
                if total > 0.0 {
                    for x in e.iter_mut() {
                        *x /= total;
                    }
                }
                *rr = e;
            }
            self.log_likelihood = ll;
        }
        Ok(())
    }

    fn cluster_instance(&self, data: &Dataset, row: usize) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        let r = self.responsibilities(data, row);
        Ok(crate::classifiers::argmax(&r).expect("k >= 1"))
    }

    fn num_clusters(&self) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.k)
    }

    fn describe(&self) -> String {
        if !self.built {
            return "EM: not built".to_string();
        }
        format!(
            "EM mixture: {} components, priors {:?}, log-likelihood {:.3}",
            self.k, self.weights, self.log_likelihood
        )
    }
}

impl Configurable for EM {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-N",
                name: "numClusters",
                description: "number of mixture components",
                default: "2".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 10_000,
                },
            },
            OptionDescriptor {
                flag: "-I",
                name: "maxIterations",
                description: "EM iterations",
                default: "20".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 100_000,
                },
            },
            OptionDescriptor {
                flag: "-S",
                name: "seed",
                description: "random seed (k-means initialisation)",
                default: "100".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: i64::MAX,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-N" => self.k = value.parse().expect("validated"),
            "-I" => self.iterations = value.parse().expect("validated"),
            "-S" => self.seed = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-N" => Ok(self.k.to_string()),
            "-I" => Ok(self.iterations.to_string()),
            "-S" => Ok(self.seed.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for EM {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k);
        w.put_usize(self.iterations);
        w.put_u64(self.seed);
        w.put_bool(self.built);
        if self.built {
            self.space.encode(&mut w);
            w.put_f64_slice(&self.weights);
            w.put_f64(self.log_likelihood);
            w.put_usize(self.models.len());
            for cluster in &self.models {
                w.put_usize(cluster.len());
                for m in cluster {
                    match m {
                        AttrModel::Skip => w.put_u64(0),
                        AttrModel::Gaussian { mean, sd } => {
                            w.put_u64(1);
                            w.put_f64(*mean);
                            w.put_f64(*sd);
                        }
                        AttrModel::Multinomial(p) => {
                            w.put_u64(2);
                            w.put_f64_slice(p);
                        }
                    }
                }
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k = r.get_usize()?;
        self.iterations = r.get_usize()?;
        self.seed = r.get_u64()?;
        self.built = r.get_bool()?;
        if self.built {
            self.space = DistanceSpace::decode(&mut r)?;
            self.weights = r.get_f64_vec()?;
            self.log_likelihood = r.get_f64()?;
            let nk = r.get_usize()?;
            if nk > 1 << 16 {
                return Err(AlgoError::BadState("absurd cluster count".into()));
            }
            self.models = (0..nk)
                .map(|_| -> Result<Vec<AttrModel>> {
                    let na = r.get_usize()?;
                    if na > 1 << 20 {
                        return Err(AlgoError::BadState("absurd attr count".into()));
                    }
                    (0..na)
                        .map(|_| -> Result<AttrModel> {
                            Ok(match r.get_u64()? {
                                0 => AttrModel::Skip,
                                1 => AttrModel::Gaussian {
                                    mean: r.get_f64()?,
                                    sd: r.get_f64()?,
                                },
                                2 => AttrModel::Multinomial(r.get_f64_vec()?),
                                tag => return Err(AlgoError::BadState(format!("bad tag {tag}"))),
                            })
                        })
                        .collect()
                })
                .collect::<Result<_>>()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{rand_index, three_blobs};
    use super::*;

    #[test]
    fn recovers_three_blobs() {
        let ds = three_blobs();
        let mut em = EM::with_k(3);
        em.build(&ds).unwrap();
        let assign: Vec<usize> = (0..ds.num_instances())
            .map(|r| em.cluster_instance(&ds, r).unwrap())
            .collect();
        let ri = rand_index(&ds, &assign);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn log_likelihood_is_finite_after_training() {
        let ds = three_blobs();
        let mut em = EM::with_k(3);
        em.build(&ds).unwrap();
        assert!(em.log_likelihood().is_finite());
    }

    #[test]
    fn mixture_weights_sum_to_one() {
        let ds = three_blobs();
        let mut em = EM::with_k(3);
        em.build(&ds).unwrap();
        let s: f64 = em.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nominal_attributes_supported() {
        use dm_data::{Attribute, Dataset};
        let mut ds = Dataset::new(
            "n",
            vec![Attribute::nominal("a", ["x", "y"]), Attribute::numeric("v")],
        );
        for i in 0..20 {
            ds.push_labels(&[
                if i % 2 == 0 { "x" } else { "y" },
                &format!("{}", i % 2 * 100),
            ])
            .unwrap();
        }
        let mut em = EM::with_k(2);
        em.build(&ds).unwrap();
        let a = em.cluster_instance(&ds, 0).unwrap();
        let b = em.cluster_instance(&ds, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn state_roundtrip() {
        let ds = three_blobs();
        let mut em = EM::with_k(3);
        em.build(&ds).unwrap();
        let mut em2 = EM::new();
        em2.decode_state(&em.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(
                em.cluster_instance(&ds, r).unwrap(),
                em2.cluster_instance(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn unbuilt_errors() {
        let ds = three_blobs();
        assert!(EM::new().cluster_instance(&ds, 0).is_err());
    }
}
