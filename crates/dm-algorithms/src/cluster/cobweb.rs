//! Cobweb (Fisher 1987) incremental conceptual clustering — the
//! clustering Web Service worked through in §4.1 of the paper (`cluster`
//! and `getCobwebGraph` operations). Numeric attributes are handled the
//! CLASSIT way (Gennari et al. 1989) with an acuity floor on the
//! standard deviation.
//!
//! Each instance is inserted incrementally: at every tree node the
//! algorithm evaluates (a) adding the instance to each existing child
//! and (b) creating a new child, and follows the option with the best
//! category utility. A `cutoff` suppresses child creation when the
//! utility gain is negligible (WEKA's `-C`). The merge/split operators
//! of the full algorithm are not implemented; this affects order
//! sensitivity but not the service contract (documented divergence).

use super::{check_clusterable, Clusterer};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use crate::tree::TreeModel;
use dm_data::{Dataset, Value};

/// Sufficient statistics for one concept node.
#[derive(Debug, Clone, PartialEq, Default)]
struct Stats {
    n: f64,
    /// `nominal[a][v]` — count of value `v` for nominal attribute `a`
    /// (empty vec for non-nominal attributes).
    nominal: Vec<Vec<f64>>,
    /// `(sum, sumsq, count)` per numeric attribute (zeros otherwise).
    numeric: Vec<(f64, f64, f64)>,
}

impl Stats {
    fn new(arities: &[usize]) -> Stats {
        Stats {
            n: 0.0,
            nominal: arities.iter().map(|&k| vec![0.0; k]).collect(),
            numeric: vec![(0.0, 0.0, 0.0); arities.len()],
        }
    }

    fn add(&mut self, data: &Dataset, row: usize, skip: &[bool]) {
        self.n += 1.0;
        for a in 0..self.nominal.len() {
            if skip[a] {
                continue;
            }
            let v = data.value(row, a);
            if Value::is_missing(v) {
                continue;
            }
            if !self.nominal[a].is_empty() {
                let i = Value::as_index(v);
                if i < self.nominal[a].len() {
                    self.nominal[a][i] += 1.0;
                }
            } else {
                let e = &mut self.numeric[a];
                e.0 += v;
                e.1 += v * v;
                e.2 += 1.0;
            }
        }
    }

    /// Expected-score contribution `Σ_a Σ_v P(a=v|C)²` for nominal
    /// attributes plus `Σ_a 1/(2√π σ)` for numeric ones.
    fn expected_score(&self, acuity: f64, skip: &[bool]) -> f64 {
        if self.n <= 0.0 {
            return 0.0;
        }
        let mut s = 0.0;
        for a in 0..self.nominal.len() {
            if skip[a] {
                continue;
            }
            if !self.nominal[a].is_empty() {
                for &c in &self.nominal[a] {
                    let p = c / self.n;
                    s += p * p;
                }
            } else {
                let (sum, sumsq, count) = self.numeric[a];
                if count > 0.0 {
                    let mean = sum / count;
                    let var = (sumsq / count - mean * mean).max(0.0);
                    let sd = var.sqrt().max(acuity);
                    s += 1.0 / (2.0 * std::f64::consts::PI.sqrt() * sd);
                }
            }
        }
        s
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Concept {
    stats: Stats,
    children: Vec<Concept>,
}

impl Concept {
    fn leaf(stats: Stats) -> Concept {
        Concept {
            stats,
            children: Vec::new(),
        }
    }

    fn num_leaves(&self) -> usize {
        if self.children.is_empty() {
            1
        } else {
            self.children.iter().map(Concept::num_leaves).sum()
        }
    }
}

/// The Cobweb/CLASSIT hierarchical clusterer.
#[derive(Debug, Clone)]
pub struct Cobweb {
    /// `-A`: acuity (minimum numeric standard deviation).
    acuity: f64,
    /// `-C`: cutoff (minimum category-utility gain to create a child).
    cutoff: f64,
    root: Option<Concept>,
    arities: Vec<usize>,
    skip: Vec<bool>,
    built: bool,
}

impl Default for Cobweb {
    fn default() -> Self {
        Cobweb {
            acuity: 1.0,
            // WEKA's default cutoff: 0.01 / (2√π).
            cutoff: 0.01 / (2.0 * std::f64::consts::PI.sqrt()),
            root: None,
            arities: Vec::new(),
            skip: Vec::new(),
            built: false,
        }
    }
}

impl Cobweb {
    /// Create with WEKA defaults (`-A 1.0 -C 0.00282…`).
    pub fn new() -> Cobweb {
        Cobweb::default()
    }

    /// Category utility of a node's child partition.
    fn category_utility(&self, node: &Concept) -> f64 {
        if node.children.is_empty() || node.stats.n <= 0.0 {
            return 0.0;
        }
        let parent_score = node.stats.expected_score(self.acuity, &self.skip);
        let mut cu = 0.0;
        for c in &node.children {
            let p = c.stats.n / node.stats.n;
            cu += p * (c.stats.expected_score(self.acuity, &self.skip) - parent_score);
        }
        cu / node.children.len() as f64
    }

    fn insert(&self, node: &mut Concept, data: &Dataset, row: usize) {
        if node.children.is_empty() {
            if node.stats.n > 0.0 {
                // Splitting the leaf into [old summary, new instance] is
                // only worthwhile when the partition's category utility
                // clears the cutoff; otherwise the instance is absorbed
                // (this is what keeps leaves concept-sized rather than
                // instance-sized).
                let old = Concept::leaf(node.stats.clone());
                let mut fresh = Stats::new(&self.arities);
                fresh.add(data, row, &self.skip);
                let mut trial = Concept {
                    stats: node.stats.clone(),
                    children: vec![old.clone(), Concept::leaf(fresh.clone())],
                };
                trial.stats.add(data, row, &self.skip);
                if self.category_utility(&trial) > self.cutoff {
                    node.children.push(old);
                    node.children.push(Concept::leaf(fresh));
                }
            }
            node.stats.add(data, row, &self.skip);
            return;
        }

        node.stats.add(data, row, &self.skip);

        // Evaluate adding to each child.
        let mut best_child = 0usize;
        let mut best_cu = f64::NEG_INFINITY;
        for i in 0..node.children.len() {
            let mut trial = node.clone();
            trial.stats = node.stats.clone();
            trial.children[i].stats.add(data, row, &self.skip);
            let cu = self.category_utility(&trial);
            if cu > best_cu {
                best_cu = cu;
                best_child = i;
            }
        }
        // Evaluate a brand-new child.
        let new_cu = {
            let mut trial = node.clone();
            let mut fresh = Stats::new(&self.arities);
            fresh.add(data, row, &self.skip);
            trial.children.push(Concept::leaf(fresh));
            self.category_utility(&trial)
        };

        if new_cu - best_cu > self.cutoff {
            let mut fresh = Stats::new(&self.arities);
            fresh.add(data, row, &self.skip);
            node.children.push(Concept::leaf(fresh));
        } else {
            self.insert(&mut node.children[best_child], data, row);
        }
    }

    /// Descend to the most probable leaf, returning its index in a
    /// left-to-right leaf enumeration.
    fn classify(&self, data: &Dataset, row: usize) -> usize {
        let mut node = self.root.as_ref().expect("built");
        let mut leaf_offset = 0usize;
        loop {
            if node.children.is_empty() {
                return leaf_offset;
            }
            // Pick the child whose hypothetical CU is best.
            let mut best_child = 0usize;
            let mut best_cu = f64::NEG_INFINITY;
            for i in 0..node.children.len() {
                let mut trial = node.clone();
                trial.stats.add(data, row, &self.skip);
                trial.children[i].stats.add(data, row, &self.skip);
                let cu = self.category_utility(&trial);
                if cu > best_cu {
                    best_cu = cu;
                    best_child = i;
                }
            }
            for c in &node.children[..best_child] {
                leaf_offset += c.num_leaves();
            }
            node = &node.children[best_child];
        }
    }

    fn render(
        &self,
        node: &Concept,
        edge: String,
        model: &mut TreeModel,
        next_leaf: &mut usize,
    ) -> usize {
        if node.children.is_empty() {
            let id = model.add_node(
                format!("leaf {} [{}]", *next_leaf, node.stats.n),
                edge,
                true,
            );
            *next_leaf += 1;
            id
        } else {
            let id = model.add_node(format!("node [{}]", node.stats.n), edge, false);
            for (i, c) in node.children.iter().enumerate() {
                let cid = self.render(c, format!("child {i}"), model, next_leaf);
                model.add_child(id, cid);
            }
            id
        }
    }

    fn encode_concept(c: &Concept, w: &mut StateWriter) {
        w.put_f64(c.stats.n);
        w.put_usize(c.stats.nominal.len());
        for v in &c.stats.nominal {
            w.put_f64_slice(v);
        }
        w.put_usize(c.stats.numeric.len());
        for (a, b, n) in &c.stats.numeric {
            w.put_f64(*a);
            w.put_f64(*b);
            w.put_f64(*n);
        }
        w.put_usize(c.children.len());
        for child in &c.children {
            Self::encode_concept(child, w);
        }
    }

    fn decode_concept(r: &mut StateReader<'_>, depth: usize) -> Result<Concept> {
        if depth > 256 {
            return Err(AlgoError::BadState("concept nesting too deep".into()));
        }
        let n = r.get_f64()?;
        let nn = r.get_usize()?;
        if nn > 1 << 20 {
            return Err(AlgoError::BadState("absurd nominal count".into()));
        }
        let nominal = (0..nn).map(|_| r.get_f64_vec()).collect::<Result<_>>()?;
        let nu = r.get_usize()?;
        if nu > 1 << 20 {
            return Err(AlgoError::BadState("absurd numeric count".into()));
        }
        let numeric = (0..nu)
            .map(|_| -> Result<(f64, f64, f64)> { Ok((r.get_f64()?, r.get_f64()?, r.get_f64()?)) })
            .collect::<Result<_>>()?;
        let nc = r.get_usize()?;
        if nc > 1 << 16 {
            return Err(AlgoError::BadState("absurd child count".into()));
        }
        let children = (0..nc)
            .map(|_| Self::decode_concept(r, depth + 1))
            .collect::<Result<_>>()?;
        Ok(Concept {
            stats: Stats {
                n,
                nominal,
                numeric,
            },
            children,
        })
    }
}

impl Clusterer for Cobweb {
    fn name(&self) -> &'static str {
        "Cobweb"
    }

    fn build(&mut self, data: &Dataset) -> Result<()> {
        check_clusterable(data)?;
        let class = data.class_index();
        self.arities = data
            .attributes()
            .iter()
            .map(|a| if a.is_nominal() { a.num_labels() } else { 0 })
            .collect();
        self.skip = (0..data.num_attributes())
            .map(|a| Some(a) == class || data.attributes()[a].is_string())
            .collect();
        let mut root = Concept::leaf(Stats::new(&self.arities));
        // Take the root out of self so `insert` can borrow self immutably.
        for row in 0..data.num_instances() {
            self.insert(&mut root, data, row);
        }
        self.root = Some(root);
        self.built = true;
        Ok(())
    }

    fn cluster_instance(&self, data: &Dataset, row: usize) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.classify(data, row))
    }

    fn num_clusters(&self) -> Result<usize> {
        let root = self.root.as_ref().ok_or(AlgoError::NotTrained)?;
        Ok(root.num_leaves())
    }

    fn describe(&self) -> String {
        match &self.root {
            None => "Cobweb: not built".to_string(),
            Some(root) => format!(
                "Cobweb concept hierarchy: {} leaves over {} instances\n{}",
                root.num_leaves(),
                root.stats.n,
                self.tree_model().expect("built").to_text()
            ),
        }
    }

    fn tree_model(&self) -> Option<TreeModel> {
        let root = self.root.as_ref()?;
        let mut model = TreeModel::new();
        let mut next_leaf = 0usize;
        self.render(root, String::new(), &mut model, &mut next_leaf);
        Some(model)
    }
}

impl Configurable for Cobweb {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-A",
                name: "acuity",
                description: "minimum numeric standard deviation",
                default: "1.0".into(),
                kind: OptionKind::Real {
                    min: 1e-9,
                    max: 1e9,
                },
            },
            OptionDescriptor {
                flag: "-C",
                name: "cutoff",
                description: "category-utility gain below which no new concept is created",
                default: "0.0028209479177387815".into(),
                kind: OptionKind::Real { min: 0.0, max: 1e9 },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-A" => self.acuity = value.parse().expect("validated"),
            "-C" => self.cutoff = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-A" => Ok(self.acuity.to_string()),
            "-C" => Ok(self.cutoff.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for Cobweb {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_f64(self.acuity);
        w.put_f64(self.cutoff);
        w.put_bool(self.built);
        if self.built {
            w.put_usize_slice(&self.arities);
            w.put_usize(self.skip.len());
            for &b in &self.skip {
                w.put_bool(b);
            }
            Self::encode_concept(self.root.as_ref().expect("built"), &mut w);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.acuity = r.get_f64()?;
        self.cutoff = r.get_f64()?;
        self.built = r.get_bool()?;
        if self.built {
            self.arities = r.get_usize_vec()?;
            let ns = r.get_usize()?;
            if ns > 1 << 20 {
                return Err(AlgoError::BadState("absurd skip count".into()));
            }
            self.skip = (0..ns).map(|_| r.get_bool()).collect::<Result<_>>()?;
            self.root = Some(Self::decode_concept(&mut r, 0)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::three_blobs;
    use super::*;
    use dm_data::{Attribute, Dataset};

    fn animals() -> Dataset {
        // A small nominal dataset with two obvious concepts.
        let mut ds = Dataset::new(
            "animals",
            vec![
                Attribute::nominal("covering", ["fur", "feathers"]),
                Attribute::nominal("flies", ["yes", "no"]),
                Attribute::nominal("legs", ["two", "four"]),
            ],
        );
        for _ in 0..5 {
            ds.push_labels(&["fur", "no", "four"]).unwrap();
            ds.push_labels(&["feathers", "yes", "two"]).unwrap();
        }
        ds
    }

    #[test]
    fn separates_two_concepts() {
        let ds = animals();
        let mut cw = Cobweb::new();
        cw.build(&ds).unwrap();
        assert!(cw.num_clusters().unwrap() >= 2);
        // Identical instances must land in the same leaf, and the two
        // concept kinds in different leaves.
        let a = cw.cluster_instance(&ds, 0).unwrap();
        let b = cw.cluster_instance(&ds, 2).unwrap();
        let c = cw.cluster_instance(&ds, 1).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn numeric_blobs_with_acuity() {
        let ds = three_blobs();
        let mut cw = Cobweb::new();
        cw.set_option("-A", "0.3").unwrap();
        cw.build(&ds).unwrap();
        assert!(cw.num_clusters().unwrap() >= 2);
        // Points from the same tight blob should co-cluster.
        let ci = ds.class_index().unwrap();
        let (mut same, mut pairs) = (0, 0);
        for i in 0..30 {
            for j in (i + 1)..30 {
                if ds.value(i, ci) == ds.value(j, ci) {
                    pairs += 1;
                    if cw.cluster_instance(&ds, i).unwrap() == cw.cluster_instance(&ds, j).unwrap()
                    {
                        same += 1;
                    }
                }
            }
        }
        assert!(
            same as f64 / pairs as f64 > 0.6,
            "co-clustering {same}/{pairs}"
        );
    }

    #[test]
    fn graph_output_is_a_tree() {
        let ds = animals();
        let mut cw = Cobweb::new();
        cw.build(&ds).unwrap();
        let t = cw.tree_model().unwrap();
        assert!(t.num_leaves() >= 2);
        assert!(t.depth() >= 2);
        assert!(t.to_text().contains("leaf"));
    }

    #[test]
    fn state_roundtrip() {
        let ds = animals();
        let mut cw = Cobweb::new();
        cw.build(&ds).unwrap();
        let mut cw2 = Cobweb::new();
        cw2.decode_state(&cw.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(
                cw.cluster_instance(&ds, r).unwrap(),
                cw2.cluster_instance(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn unbuilt_errors() {
        let ds = animals();
        assert!(Cobweb::new().cluster_instance(&ds, 0).is_err());
        assert!(Cobweb::new().num_clusters().is_err());
        assert!(Cobweb::new().tree_model().is_none());
    }

    #[test]
    fn higher_cutoff_fewer_clusters() {
        let ds = three_blobs();
        let mut fine = Cobweb::new();
        fine.set_option("-A", "0.3").unwrap();
        fine.build(&ds).unwrap();
        let mut coarse = Cobweb::new();
        coarse.set_option("-A", "0.3").unwrap();
        coarse.set_option("-C", "0.5").unwrap();
        coarse.build(&ds).unwrap();
        assert!(coarse.num_clusters().unwrap() <= fine.num_clusters().unwrap());
    }
}
