//! SimpleKMeans: Lloyd's algorithm over the mixed-type distance space
//! (numeric attributes range-normalised, nominal attributes by mode).

use super::{check_clusterable, Clusterer, DistanceSpace};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::pool;
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{block_ranges, Bitmap, CodesView, Dataset, Value};

/// Minimum row count before the assignment step fans out on the pool.
const MIN_PARALLEL_ASSIGN: usize = 512;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A columnar projection of the dataset into the distance space:
/// numeric attributes pre-normalised (same `norm` expression the
/// scalar path applies per cell), nominal codes and validity bitmaps
/// borrowed zero-copy from the dataset. Built once per assignment
/// sweep and shared by every Lloyd iteration's scan.
enum ProjCol<'a> {
    /// Class or string attribute — contributes nothing.
    Skip,
    /// Numeric attribute: pre-normalised values (0.0 at missing cells —
    /// also the value `norm` yields for degenerate ranges).
    Numeric { norm: Vec<f64>, valid: &'a Bitmap },
    /// Nominal attribute: dense codes, borrowed.
    Nominal {
        codes: CodesView<'a>,
        valid: &'a Bitmap,
    },
}

struct Projection<'a> {
    cols: Vec<ProjCol<'a>>,
}

impl<'a> Projection<'a> {
    /// Build the projection, or `None` when the fitted space disagrees
    /// with the dataset header (then the caller falls back to the
    /// scalar per-row path, which reproduces the legacy behaviour for
    /// mismatched state exactly).
    fn build(space: &DistanceSpace, data: &'a Dataset) -> Option<Projection<'a>> {
        if space.skip.len() != data.num_attributes() {
            return None;
        }
        let mut cols = Vec::with_capacity(space.skip.len());
        for a in 0..space.skip.len() {
            if space.skip[a] {
                cols.push(ProjCol::Skip);
            } else if space.nominal[a] {
                let (codes, valid) = data.column(a).nominal()?;
                cols.push(ProjCol::Nominal { codes, valid });
            } else {
                let (values, valid) = data.column(a).numeric()?;
                let norm = values
                    .iter()
                    .enumerate()
                    .map(|(r, &v)| if valid.get(r) { space.norm(a, v) } else { 0.0 })
                    .collect();
                cols.push(ProjCol::Numeric { norm, valid });
            }
        }
        Some(Projection { cols })
    }
}

/// The k-means clusterer.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `-N`: number of clusters.
    k: usize,
    /// `-I`: maximum Lloyd iterations.
    max_iterations: usize,
    /// `-S`: RNG seed for centroid initialisation.
    seed: u64,
    space: DistanceSpace,
    /// Normalised centroids: `centroids[c][attr]`.
    centroids: Vec<Vec<f64>>,
    /// Training-set cluster sizes.
    sizes: Vec<usize>,
    /// Iterations actually performed.
    iterations_run: usize,
    built: bool,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans {
            k: 2,
            max_iterations: 100,
            seed: 10,
            space: DistanceSpace::default(),
            centroids: Vec::new(),
            sizes: Vec::new(),
            iterations_run: 0,
            built: false,
        }
    }
}

impl KMeans {
    /// Create a 2-cluster k-means (WEKA default).
    pub fn new() -> KMeans {
        KMeans::default()
    }

    /// Create with an explicit cluster count.
    pub fn with_k(k: usize) -> KMeans {
        KMeans {
            k: k.max(1),
            ..KMeans::default()
        }
    }

    /// Cluster assignments for every row of `data`. Rows are scored in
    /// parallel for large datasets; each assignment is an independent
    /// argmin, so the result is identical at any thread count.
    pub fn assignments(&self, data: &Dataset) -> Result<Vec<usize>> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.assign_all(data))
    }

    /// The Lloyd assignment step: nearest centroid per row, via the
    /// vectorized columnar scan (falling back to the scalar per-row
    /// path when the fitted space does not match the dataset header).
    fn assign_all(&self, data: &Dataset) -> Vec<usize> {
        let n = data.num_instances();
        let Some(proj) = Projection::build(&self.space, data) else {
            return pool::parallel_map_min(n, MIN_PARALLEL_ASSIGN, |r| self.nearest(data, r));
        };
        let threads = pool::current_threads();
        if n >= MIN_PARALLEL_ASSIGN && threads > 1 {
            let blocks = block_ranges(n, threads);
            pool::parallel_map(blocks.len(), |b| {
                self.assign_block(&proj, blocks[b].clone())
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            self.assign_block(&proj, 0..n)
        }
    }

    /// Columnar assignment for one contiguous row block: for each
    /// centroid, accumulate squared diffs attribute by attribute into
    /// per-row accumulators, take the square root, and fold a strict-<
    /// argmin in centroid order. Per row this performs the exact FP
    /// operation sequence of `DistanceSpace::distance_to_centroid`
    /// followed by `nearest`'s comparison, so assignments are
    /// bit-identical to the scalar path (square roots are compared, not
    /// squared distances — distinct d² can round to equal √d², which
    /// would otherwise flip first-wins ties).
    fn assign_block(&self, proj: &Projection<'_>, range: std::ops::Range<usize>) -> Vec<usize> {
        let start = range.start;
        let len = range.len();
        let mut best = vec![0usize; len];
        let mut best_d = vec![f64::INFINITY; len];
        let mut dist = vec![0.0f64; len];
        for (c, centroid) in self.centroids.iter().enumerate() {
            dist.iter_mut().for_each(|d| *d = 0.0);
            for (a, &cv) in centroid.iter().enumerate() {
                match &proj.cols[a] {
                    ProjCol::Skip => {}
                    ProjCol::Numeric { norm, valid } => {
                        if Value::is_missing(cv) {
                            for d in dist.iter_mut() {
                                *d += 1.0;
                            }
                        } else {
                            let col = &norm[range.clone()];
                            if valid.all_valid() {
                                for (d, &nv) in dist.iter_mut().zip(col) {
                                    let diff = nv - cv;
                                    *d += diff * diff;
                                }
                            } else {
                                for (i, (d, &nv)) in dist.iter_mut().zip(col).enumerate() {
                                    if valid.get(start + i) {
                                        let diff = nv - cv;
                                        *d += diff * diff;
                                    } else {
                                        *d += 1.0;
                                    }
                                }
                            }
                        }
                    }
                    ProjCol::Nominal { codes, valid } => {
                        if Value::is_missing(cv) {
                            for d in dist.iter_mut() {
                                *d += 1.0;
                            }
                        } else {
                            let cc = Value::as_index(cv);
                            if valid.all_valid() {
                                for (i, d) in dist.iter_mut().enumerate() {
                                    *d += f64::from(codes.get(start + i) != cc);
                                }
                            } else {
                                for (i, d) in dist.iter_mut().enumerate() {
                                    *d += f64::from(
                                        !valid.get(start + i) || codes.get(start + i) != cc,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            for (i, d) in dist.iter().enumerate() {
                let d = d.sqrt();
                if d < best_d[i] {
                    best_d[i] = d;
                    best[i] = c;
                }
            }
        }
        best
    }

    fn nearest(&self, data: &Dataset, row: usize) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d = self.space.distance_to_centroid(data, row, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    fn recompute_centroid(&self, data: &Dataset, members: &[usize], centroid: &mut Vec<f64>) {
        let n_attrs = data.num_attributes();
        for a in 0..n_attrs {
            if self.space.skip[a] {
                centroid[a] = 0.0;
                continue;
            }
            if self.space.nominal[a] {
                let arity = data.attributes()[a].num_labels();
                let mut counts = vec![0usize; arity];
                for &r in members {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        counts[Value::as_index(v)] += 1;
                    }
                }
                let mode = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroid[a] = Value::from_index(mode);
            } else {
                let mut sum = 0.0;
                let mut n = 0.0;
                for &r in members {
                    let v = data.value(r, a);
                    if !Value::is_missing(v) {
                        sum += self.space.norm(a, v);
                        n += 1.0;
                    }
                }
                centroid[a] = if n > 0.0 { sum / n } else { 0.0 };
            }
        }
    }
}

impl Clusterer for KMeans {
    fn name(&self) -> &'static str {
        "SimpleKMeans"
    }

    fn build(&mut self, data: &Dataset) -> Result<()> {
        check_clusterable(data)?;
        if self.k > data.num_instances() {
            return Err(AlgoError::Unsupported(format!(
                "k = {} exceeds {} instances",
                self.k,
                data.num_instances()
            )));
        }
        self.space = DistanceSpace::fit(data);
        let n_attrs = data.num_attributes();

        // k-means++ seeding: first centroid uniform, each subsequent one
        // drawn with probability proportional to the squared distance to
        // the nearest centroid chosen so far (avoids the classic bad
        // initialisation of two seeds landing in one cluster).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let encode_row = |r: usize| -> Vec<f64> {
            (0..n_attrs)
                .map(|a| {
                    let v = data.value(r, a);
                    if self.space.skip[a] || Value::is_missing(v) {
                        0.0
                    } else if self.space.nominal[a] {
                        v
                    } else {
                        self.space.norm(a, v)
                    }
                })
                .collect()
        };
        let n = data.num_instances();
        let first = rng.random_range(0..n);
        self.centroids = vec![encode_row(first)];
        let mut nearest_sq: Vec<f64> = (0..n)
            .map(|r| {
                let d = self.space.distance_to_centroid(data, r, &self.centroids[0]);
                d * d
            })
            .collect();
        while self.centroids.len() < self.k {
            let total: f64 = nearest_sq.iter().sum();
            let pick = if total <= 0.0 {
                rng.random_range(0..n)
            } else {
                let mut target = rng.random_range(0.0..total);
                let mut chosen = n - 1;
                for (r, &d2) in nearest_sq.iter().enumerate() {
                    if target < d2 {
                        chosen = r;
                        break;
                    }
                    target -= d2;
                }
                chosen
            };
            let centroid = encode_row(pick);
            for (r, slot) in nearest_sq.iter_mut().enumerate() {
                let d = self.space.distance_to_centroid(data, r, &centroid);
                *slot = slot.min(d * d);
            }
            self.centroids.push(centroid);
        }
        self.built = true;

        let mut assign = vec![usize::MAX; data.num_instances()];
        self.iterations_run = 0;
        for _ in 0..self.max_iterations {
            self.iterations_run += 1;
            // Parallel assignment step; centroid recomputation below
            // stays serial (it folds member rows in row order).
            let next = self.assign_all(data);
            let mut changed = false;
            for (r, &c) in next.iter().enumerate() {
                if assign[r] != c {
                    assign[r] = c;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.k];
            for (r, &c) in assign.iter().enumerate() {
                members[c].push(r);
            }
            let mut centroids = std::mem::take(&mut self.centroids);
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if !members[c].is_empty() {
                    self.recompute_centroid(data, &members[c], centroid);
                }
            }
            self.centroids = centroids;
        }
        self.sizes = {
            let mut s = vec![0usize; self.k];
            for &c in &assign {
                s[c] += 1;
            }
            s
        };
        Ok(())
    }

    fn cluster_instance(&self, data: &Dataset, row: usize) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.nearest(data, row))
    }

    fn num_clusters(&self) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.k)
    }

    fn describe(&self) -> String {
        if !self.built {
            return "SimpleKMeans: not built".to_string();
        }
        let mut out = format!(
            "kMeans\n======\nNumber of clusters: {}\nIterations: {}\n",
            self.k, self.iterations_run
        );
        for (c, size) in self.sizes.iter().enumerate() {
            out.push_str(&format!("Cluster {c}: {size} instances\n"));
        }
        out
    }
}

impl Configurable for KMeans {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-N",
                name: "numClusters",
                description: "number of clusters",
                default: "2".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 100_000,
                },
            },
            OptionDescriptor {
                flag: "-I",
                name: "maxIterations",
                description: "maximum Lloyd iterations",
                default: "100".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
            OptionDescriptor {
                flag: "-S",
                name: "seed",
                description: "random seed for centroid initialisation",
                default: "10".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: i64::MAX,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-N" => self.k = value.parse().expect("validated"),
            "-I" => self.max_iterations = value.parse().expect("validated"),
            "-S" => self.seed = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-N" => Ok(self.k.to_string()),
            "-I" => Ok(self.max_iterations.to_string()),
            "-S" => Ok(self.seed.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for KMeans {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k);
        w.put_usize(self.max_iterations);
        w.put_u64(self.seed);
        w.put_bool(self.built);
        if self.built {
            self.space.encode(&mut w);
            w.put_usize(self.centroids.len());
            for c in &self.centroids {
                w.put_f64_slice(c);
            }
            w.put_usize_slice(&self.sizes);
            w.put_usize(self.iterations_run);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k = r.get_usize()?;
        self.max_iterations = r.get_usize()?;
        self.seed = r.get_u64()?;
        self.built = r.get_bool()?;
        if self.built {
            self.space = DistanceSpace::decode(&mut r)?;
            let n = r.get_usize()?;
            if n > 1 << 20 {
                return Err(AlgoError::BadState("absurd centroid count".into()));
            }
            self.centroids = (0..n).map(|_| r.get_f64_vec()).collect::<Result<_>>()?;
            self.sizes = r.get_usize_vec()?;
            self.iterations_run = r.get_usize()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{rand_index, three_blobs};
    use super::*;

    #[test]
    fn recovers_three_blobs() {
        let ds = three_blobs();
        let mut km = KMeans::with_k(3);
        km.build(&ds).unwrap();
        let assign = km.assignments(&ds).unwrap();
        let ri = rand_index(&ds, &assign);
        assert!(ri > 0.95, "rand index {ri}");
        assert_eq!(km.num_clusters().unwrap(), 3);
    }

    #[test]
    fn converges_before_max_iterations() {
        let ds = three_blobs();
        let mut km = KMeans::with_k(3);
        km.build(&ds).unwrap();
        assert!(km.iterations_run < 100);
    }

    #[test]
    fn k_larger_than_data_rejected() {
        let ds = three_blobs();
        let mut km = KMeans::with_k(1000);
        assert!(km.build(&ds).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = three_blobs();
        let mut a = KMeans::with_k(3);
        a.build(&ds).unwrap();
        let mut b = KMeans::with_k(3);
        b.build(&ds).unwrap();
        assert_eq!(a.assignments(&ds).unwrap(), b.assignments(&ds).unwrap());
    }

    #[test]
    fn state_roundtrip() {
        let ds = three_blobs();
        let mut km = KMeans::with_k(3);
        km.build(&ds).unwrap();
        let mut km2 = KMeans::new();
        km2.decode_state(&km.encode_state()).unwrap();
        assert_eq!(km.assignments(&ds).unwrap(), km2.assignments(&ds).unwrap());
    }

    #[test]
    fn unbuilt_errors() {
        let ds = three_blobs();
        assert!(KMeans::new().cluster_instance(&ds, 0).is_err());
        assert!(KMeans::new().num_clusters().is_err());
    }

    #[test]
    fn columnar_assignment_matches_scalar_nearest() {
        // The vectorized block scan must agree with the per-row scalar
        // argmin on mixed nominal data with missing cells, at every
        // pool width, including the pooled large-n path.
        let base = dm_data::corpus::breast_cancer();
        let mut km = KMeans::with_k(4);
        km.build(&base).unwrap();
        let scalar: Vec<usize> = (0..base.num_instances())
            .map(|r| km.nearest(&base, r))
            .collect();
        assert_eq!(km.assignments(&base).unwrap(), scalar);
        // Duplicate rows past MIN_PARALLEL_ASSIGN to force block fan-out.
        let rows: Vec<usize> = (0..MIN_PARALLEL_ASSIGN + 37)
            .map(|i| i % base.num_instances())
            .collect();
        let big = base.select_rows(&rows);
        let scalar_big: Vec<usize> = (0..big.num_instances())
            .map(|r| km.nearest(&big, r))
            .collect();
        for threads in [1usize, 2, 8] {
            let pooled = crate::pool::with_threads(threads, || km.assignments(&big).unwrap());
            assert_eq!(pooled, scalar_big, "threads={threads}");
        }
    }

    #[test]
    fn describe_reports_sizes() {
        let ds = three_blobs();
        let mut km = KMeans::with_k(3);
        km.build(&ds).unwrap();
        let text = km.describe();
        assert!(text.contains("Number of clusters: 3"));
        assert!(text.contains("Cluster 0"));
    }
}
