//! FarthestFirst (Hochbaum–Shmoys traversal, as in WEKA): pick a seed
//! point, then repeatedly add the point farthest from the chosen
//! centres; assign every instance to its nearest centre.

use super::{check_clusterable, Clusterer, DistanceSpace};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The farthest-first clusterer.
#[derive(Debug, Clone)]
pub struct FarthestFirst {
    /// `-N`: number of clusters.
    k: usize,
    /// `-S`: RNG seed for the first centre.
    seed: u64,
    space: DistanceSpace,
    /// Centres as stored raw rows (nominal = label index, numeric = raw).
    centers: Vec<Vec<f64>>,
    built: bool,
}

impl Default for FarthestFirst {
    fn default() -> Self {
        FarthestFirst {
            k: 2,
            seed: 1,
            space: DistanceSpace::default(),
            centers: Vec::new(),
            built: false,
        }
    }
}

impl FarthestFirst {
    /// Create with WEKA defaults (2 clusters).
    pub fn new() -> FarthestFirst {
        FarthestFirst::default()
    }

    /// Create with an explicit cluster count.
    pub fn with_k(k: usize) -> FarthestFirst {
        FarthestFirst {
            k: k.max(1),
            ..FarthestFirst::default()
        }
    }

    fn distance_to_center(&self, data: &Dataset, row: usize, center: &[f64]) -> f64 {
        let mut d = 0.0;
        for a in 0..center.len() {
            if self.space.skip[a] {
                continue;
            }
            let v = data.value(row, a);
            let c = center[a];
            let diff = if Value::is_missing(v) || Value::is_missing(c) {
                1.0
            } else if self.space.nominal[a] {
                if Value::as_index(v) == Value::as_index(c) {
                    0.0
                } else {
                    1.0
                }
            } else {
                self.space.norm(a, v) - self.space.norm(a, c)
            };
            d += diff * diff;
        }
        d.sqrt()
    }

    fn nearest(&self, data: &Dataset, row: usize) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, center) in self.centers.iter().enumerate() {
            let d = self.distance_to_center(data, row, center);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }
}

impl Clusterer for FarthestFirst {
    fn name(&self) -> &'static str {
        "FarthestFirst"
    }

    fn build(&mut self, data: &Dataset) -> Result<()> {
        check_clusterable(data)?;
        let n = data.num_instances();
        if self.k > n {
            return Err(AlgoError::Unsupported(format!(
                "k = {} exceeds {n} instances",
                self.k
            )));
        }
        self.space = DistanceSpace::fit(data);
        self.built = true;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let first = rng.random_range(0..n);
        self.centers = vec![data.row_values(first)];
        let mut min_dist: Vec<f64> = (0..n)
            .map(|r| self.distance_to_center(data, r, &self.centers[0]))
            .collect();
        while self.centers.len() < self.k {
            // Farthest point from the current centre set.
            let (far, _) = min_dist
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite distances"))
                .expect("n >= 1");
            self.centers.push(data.row_values(far));
            let newest = self.centers.last().expect("just pushed").clone();
            for (r, md) in min_dist.iter_mut().enumerate() {
                let d = self.distance_to_center(data, r, &newest);
                if d < *md {
                    *md = d;
                }
            }
        }
        Ok(())
    }

    fn cluster_instance(&self, data: &Dataset, row: usize) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.nearest(data, row))
    }

    fn num_clusters(&self) -> Result<usize> {
        if !self.built {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.centers.len())
    }

    fn describe(&self) -> String {
        if !self.built {
            return "FarthestFirst: not built".to_string();
        }
        format!("FarthestFirst with {} cluster centres", self.centers.len())
    }
}

impl Configurable for FarthestFirst {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-N",
                name: "numClusters",
                description: "number of clusters",
                default: "2".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 100_000,
                },
            },
            OptionDescriptor {
                flag: "-S",
                name: "seed",
                description: "random seed for the first centre",
                default: "1".into(),
                kind: OptionKind::Integer {
                    min: 0,
                    max: i64::MAX,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-N" => self.k = value.parse().expect("validated"),
            "-S" => self.seed = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-N" => Ok(self.k.to_string()),
            "-S" => Ok(self.seed.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for FarthestFirst {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k);
        w.put_u64(self.seed);
        w.put_bool(self.built);
        if self.built {
            self.space.encode(&mut w);
            w.put_usize(self.centers.len());
            for c in &self.centers {
                w.put_f64_slice(c);
            }
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k = r.get_usize()?;
        self.seed = r.get_u64()?;
        self.built = r.get_bool()?;
        if self.built {
            self.space = DistanceSpace::decode(&mut r)?;
            let n = r.get_usize()?;
            if n > 1 << 20 {
                return Err(AlgoError::BadState("absurd centre count".into()));
            }
            self.centers = (0..n).map(|_| r.get_f64_vec()).collect::<Result<_>>()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{rand_index, three_blobs};
    use super::*;

    #[test]
    fn separates_blobs() {
        let ds = three_blobs();
        let mut ff = FarthestFirst::with_k(3);
        ff.build(&ds).unwrap();
        let assign: Vec<usize> = (0..ds.num_instances())
            .map(|r| ff.cluster_instance(&ds, r).unwrap())
            .collect();
        let ri = rand_index(&ds, &assign);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn centres_are_far_apart() {
        let ds = three_blobs();
        let mut ff = FarthestFirst::with_k(3);
        ff.build(&ds).unwrap();
        // Each pair of centres must be in different blobs (distance > 5
        // raw units ≫ normalised 0.3).
        for i in 0..3 {
            for j in (i + 1)..3 {
                let mut d = 0.0;
                for a in 0..2 {
                    let diff = ff.centers[i][a] - ff.centers[j][a];
                    d += diff * diff;
                }
                assert!(d.sqrt() > 3.0, "centres {i} and {j} too close");
            }
        }
    }

    #[test]
    fn state_roundtrip() {
        let ds = three_blobs();
        let mut ff = FarthestFirst::with_k(3);
        ff.build(&ds).unwrap();
        let mut ff2 = FarthestFirst::new();
        ff2.decode_state(&ff.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(
                ff.cluster_instance(&ds, r).unwrap(),
                ff2.cluster_instance(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn unbuilt_errors() {
        let ds = three_blobs();
        assert!(FarthestFirst::new().cluster_instance(&ds, 0).is_err());
    }

    #[test]
    fn k_exceeding_instances_rejected() {
        let ds = three_blobs();
        let mut ff = FarthestFirst::with_k(10_000);
        assert!(ff.build(&ds).is_err());
    }
}
