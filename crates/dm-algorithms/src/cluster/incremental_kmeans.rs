//! Mini-batch (incremental) k-means for streamed ingest.
//!
//! Sculley-style mini-batch k-means: rows are absorbed a chunk at a
//! time and folded into the centres with per-centre learning rates
//! `1/n_c`, so the model stays fresh under continuous ingest without
//! ever materialising the whole dataset. Unlike `SimpleKMeans` it
//! neither iterates to convergence nor needs the full data up front —
//! `absorb` may be called forever.
//!
//! Determinism and chunk invariance: rows are buffered into an internal
//! pending window and applied in exact mini-batches of `-B` rows
//! (assignment is computed against a centre snapshot frozen at the
//! start of each mini-batch, then rows update the centres
//! sequentially). Because the buffer boundary — not the caller's chunk
//! boundary — decides when a mini-batch runs, feeding the same rows in
//! different chunkings produces byte-identical state: streamed-fold
//! training equals migrate-then-train exactly (pinned by E18).
//!
//! Seeding needs no RNG: the first mini-batch is seeded farthest-first
//! (centre 0 is its first row; each next centre is the buffered row
//! with the greatest distance to its nearest chosen centre, lowest
//! index on ties).
//!
//! Only numeric non-class attributes participate (distance is plain
//! Euclidean on those dimensions); datasets without any are rejected.
//! Missing cells simply don't contribute to distance or updates.

use super::{check_clusterable, Clusterer};
use crate::error::{AlgoError, Result};
use crate::options::{descriptor_for, Configurable, OptionDescriptor, OptionKind};
use crate::state::{StateReader, StateWriter, Stateful};
use dm_data::{Dataset, Value};

/// The mini-batch k-means clusterer.
#[derive(Debug, Clone)]
pub struct IncrementalKMeans {
    /// `-N`: number of clusters.
    k: usize,
    /// `-B`: mini-batch size (rows buffered before an update runs).
    batch_rows: usize,
    /// Indices of the numeric non-class attributes the model projects
    /// onto (frozen at init).
    dims: Vec<usize>,
    /// Centres, `k × dims.len()`; a dimension with `counts == 0` is
    /// still unknown and holds `0.0` filler.
    centers: Vec<Vec<f64>>,
    /// Per-centre per-dimension observation counts (learning-rate
    /// denominators; doubles as the "dimension known" flag).
    counts: Vec<Vec<u64>>,
    /// Centres already seeded?
    seeded: bool,
    /// Rows buffered but not yet folded into the centres (projected).
    pending: Vec<Vec<f64>>,
    /// Total rows absorbed (including still-pending ones).
    rows_seen: u64,
    init: bool,
}

impl Default for IncrementalKMeans {
    fn default() -> Self {
        IncrementalKMeans {
            k: 2,
            batch_rows: 256,
            dims: Vec::new(),
            centers: Vec::new(),
            counts: Vec::new(),
            seeded: false,
            pending: Vec::new(),
            rows_seen: 0,
            init: false,
        }
    }
}

impl IncrementalKMeans {
    /// Create with defaults (2 clusters, 256-row mini-batches).
    pub fn new() -> IncrementalKMeans {
        IncrementalKMeans::default()
    }

    /// Create with an explicit cluster count.
    pub fn with_k(k: usize) -> IncrementalKMeans {
        IncrementalKMeans {
            k: k.max(1),
            ..IncrementalKMeans::default()
        }
    }

    /// Initialise the projection from a schema-bearing dataset. Called
    /// implicitly by the first [`IncrementalKMeans::absorb`]; resets
    /// any previous model.
    pub fn init_schema(&mut self, data: &Dataset) -> Result<()> {
        let class = data.class_index();
        let dims: Vec<usize> = (0..data.num_attributes())
            .filter(|&a| Some(a) != class && data.attributes()[a].is_numeric())
            .collect();
        if dims.is_empty() {
            return Err(AlgoError::Unsupported(
                "mini-batch k-means needs at least one numeric non-class attribute".into(),
            ));
        }
        self.dims = dims;
        self.centers = vec![vec![0.0; self.dims.len()]; self.k];
        self.counts = vec![vec![0; self.dims.len()]; self.k];
        self.seeded = false;
        self.pending = Vec::new();
        self.rows_seen = 0;
        self.init = true;
        Ok(())
    }

    /// Squared Euclidean distance between a projected row and a centre,
    /// over dimensions known on both sides.
    fn dist2(&self, row: &[f64], c: usize) -> f64 {
        let mut d = 0.0;
        for (j, &v) in row.iter().enumerate() {
            if Value::is_missing(v) || self.counts[c][j] == 0 {
                continue;
            }
            let diff = v - self.centers[c][j];
            d += diff * diff;
        }
        d
    }

    fn nearest(&self, row: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for c in 0..self.centers.len() {
            let d = self.dist2(row, c);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Farthest-first seeding over the buffered rows (no RNG: row 0 is
    /// the first centre; ties go to the lowest row index). Only the
    /// first `-B` buffered rows are considered — the window about to be
    /// drained — so the seeds do not depend on how many rows happen to
    /// be buffered beyond it, keeping absorb chunk-invariant.
    fn seed_from_pending(&mut self) {
        let window = &self.pending[..self.batch_rows.min(self.pending.len())];
        let k = self.k.min(window.len());
        let mut chosen = vec![0usize];
        let mut min_d: Vec<f64> = window.iter().map(|r| seed_dist2(r, &window[0])).collect();
        while chosen.len() < k {
            let mut far = 0;
            let mut far_d = f64::NEG_INFINITY;
            for (i, &d) in min_d.iter().enumerate() {
                if d > far_d {
                    far_d = d;
                    far = i;
                }
            }
            chosen.push(far);
            for (i, md) in min_d.iter_mut().enumerate() {
                let d = seed_dist2(&window[i], &window[far]);
                if d < *md {
                    *md = d;
                }
            }
        }
        for (c, &row) in chosen.iter().enumerate() {
            for (j, &v) in self.pending[row].iter().enumerate() {
                if !Value::is_missing(v) {
                    self.centers[c][j] = v;
                    self.counts[c][j] = 1;
                }
            }
        }
        self.seeded = true;
    }

    /// Fold one exact mini-batch (`rows`) into the centres: assignments
    /// against the frozen snapshot, then sequential per-row updates.
    fn apply_mini_batch(&mut self, rows: &[Vec<f64>]) {
        let assign: Vec<usize> = rows.iter().map(|r| self.nearest(r)).collect();
        for (row, &c) in rows.iter().zip(&assign) {
            for (j, &v) in row.iter().enumerate() {
                if Value::is_missing(v) {
                    continue;
                }
                self.counts[c][j] += 1;
                let eta = 1.0 / self.counts[c][j] as f64;
                self.centers[c][j] += eta * (v - self.centers[c][j]);
            }
        }
    }

    fn drain_pending(&mut self, force_tail: bool) {
        while self.pending.len() >= self.batch_rows {
            if !self.seeded {
                self.seed_from_pending();
            }
            let batch: Vec<Vec<f64>> = self.pending.drain(..self.batch_rows).collect();
            self.apply_mini_batch(&batch);
        }
        if force_tail && !self.pending.is_empty() {
            if !self.seeded {
                self.seed_from_pending();
            }
            let batch: Vec<Vec<f64>> = self.pending.drain(..).collect();
            self.apply_mini_batch(&batch);
        }
    }

    /// Absorb a chunk of rows. The first call fixes the projection from
    /// `data`'s schema; later chunks must carry the same attribute
    /// count. Updates run on the internal `-B`-row buffer boundary, so
    /// chunking does not affect the resulting model.
    pub fn absorb(&mut self, data: &Dataset) -> Result<()> {
        if !self.init {
            check_clusterable(data)?;
            self.init_schema(data)?;
        }
        if let Some(&max_dim) = self.dims.last() {
            if max_dim >= data.num_attributes() {
                return Err(AlgoError::Data(dm_data::DataError::Arity {
                    got: data.num_attributes(),
                    expected: max_dim + 1,
                }));
            }
        }
        for r in 0..data.num_instances() {
            self.pending
                .push(self.dims.iter().map(|&a| data.value(r, a)).collect());
            self.rows_seen += 1;
        }
        self.drain_pending(false);
        Ok(())
    }

    /// Fold any buffered tail rows into the centres (call when the
    /// stream closes). Errors if nothing was ever absorbed.
    pub fn flush(&mut self) -> Result<()> {
        if !self.init || self.rows_seen == 0 {
            return Err(AlgoError::Data(dm_data::DataError::Empty));
        }
        self.drain_pending(true);
        Ok(())
    }

    /// Total rows absorbed so far (pending included).
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }
}

impl Clusterer for IncrementalKMeans {
    fn name(&self) -> &'static str {
        "IncrementalKMeans"
    }

    fn build(&mut self, data: &Dataset) -> Result<()> {
        check_clusterable(data)?;
        self.init = false; // reset: build() is batch semantics
        self.init_schema(data)?;
        self.absorb(data)?;
        self.flush()
    }

    fn cluster_instance(&self, data: &Dataset, row: usize) -> Result<usize> {
        if !self.init || !self.seeded {
            return Err(AlgoError::NotTrained);
        }
        let projected: Vec<f64> = self.dims.iter().map(|&a| data.value(row, a)).collect();
        Ok(self.nearest(&projected))
    }

    fn num_clusters(&self) -> Result<usize> {
        if !self.init || !self.seeded {
            return Err(AlgoError::NotTrained);
        }
        Ok(self.centers.len())
    }

    fn describe(&self) -> String {
        if !self.init || !self.seeded {
            return "IncrementalKMeans: not built".to_string();
        }
        let mut s = format!(
            "Mini-batch k-means: {} centres over {} numeric attributes, {} rows absorbed (batch {})\n",
            self.centers.len(),
            self.dims.len(),
            self.rows_seen,
            self.batch_rows
        );
        for (c, center) in self.centers.iter().enumerate() {
            let coords: Vec<String> = center.iter().map(|v| format!("{v:.4}")).collect();
            s.push_str(&format!("  centre {c}: [{}]\n", coords.join(", ")));
        }
        s
    }
}

/// Seeding distance: squared Euclidean over dimensions present in both
/// rows (free function so it can run while `pending` is borrowed).
fn seed_dist2(a: &[f64], b: &[f64]) -> f64 {
    let mut d = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if !Value::is_missing(x) && !Value::is_missing(y) {
            let diff = x - y;
            d += diff * diff;
        }
    }
    d
}

impl Configurable for IncrementalKMeans {
    fn option_descriptors(&self) -> Vec<OptionDescriptor> {
        vec![
            OptionDescriptor {
                flag: "-N",
                name: "numClusters",
                description: "number of clusters",
                default: "2".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 100_000,
                },
            },
            OptionDescriptor {
                flag: "-B",
                name: "batchRows",
                description: "mini-batch size in rows",
                default: "256".into(),
                kind: OptionKind::Integer {
                    min: 1,
                    max: 1_000_000,
                },
            },
        ]
    }

    fn set_option(&mut self, flag: &str, value: &str) -> Result<()> {
        let ds = self.option_descriptors();
        descriptor_for(&ds, flag)?.validate(value)?;
        match flag {
            "-N" => self.k = value.parse().expect("validated"),
            "-B" => self.batch_rows = value.parse().expect("validated"),
            _ => unreachable!("descriptor_for rejects unknown flags"),
        }
        Ok(())
    }

    fn get_option(&self, flag: &str) -> Result<String> {
        match flag {
            "-N" => Ok(self.k.to_string()),
            "-B" => Ok(self.batch_rows.to_string()),
            _ => Err(AlgoError::BadOption {
                flag: flag.into(),
                message: "unknown option".into(),
            }),
        }
    }
}

impl Stateful for IncrementalKMeans {
    fn encode_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_usize(self.k);
        w.put_usize(self.batch_rows);
        w.put_bool(self.init);
        if self.init {
            w.put_usize_slice(&self.dims);
            w.put_bool(self.seeded);
            w.put_usize(self.centers.len());
            for (c, counts) in self.centers.iter().zip(&self.counts) {
                w.put_f64_slice(c);
                let as_u64: Vec<usize> = counts.iter().map(|&n| n as usize).collect();
                w.put_usize_slice(&as_u64);
            }
            w.put_usize(self.pending.len());
            for row in &self.pending {
                w.put_f64_slice(row);
            }
            w.put_u64(self.rows_seen);
        }
        w.into_bytes()
    }

    fn decode_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = StateReader::new(bytes);
        self.k = r.get_usize()?;
        self.batch_rows = r.get_usize()?;
        self.init = r.get_bool()?;
        self.dims = Vec::new();
        self.centers = Vec::new();
        self.counts = Vec::new();
        self.pending = Vec::new();
        self.seeded = false;
        self.rows_seen = 0;
        if self.init {
            self.dims = r.get_usize_vec()?;
            self.seeded = r.get_bool()?;
            let n = r.get_usize()?;
            if n > 1 << 20 {
                return Err(AlgoError::BadState("absurd centre count".into()));
            }
            for _ in 0..n {
                self.centers.push(r.get_f64_vec()?);
                self.counts
                    .push(r.get_usize_vec()?.into_iter().map(|n| n as u64).collect());
            }
            let pending = r.get_usize()?;
            if pending > 1 << 24 {
                return Err(AlgoError::BadState("absurd pending buffer".into()));
            }
            self.pending = (0..pending)
                .map(|_| r.get_f64_vec())
                .collect::<Result<_>>()?;
            self.rows_seen = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{rand_index, three_blobs};
    use super::*;

    #[test]
    fn separates_blobs() {
        let ds = three_blobs();
        let mut km = IncrementalKMeans::with_k(3);
        km.build(&ds).unwrap();
        let assign: Vec<usize> = (0..ds.num_instances())
            .map(|r| km.cluster_instance(&ds, r).unwrap())
            .collect();
        let ri = rand_index(&ds, &assign);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn chunked_absorb_equals_batch_build() {
        // The pending-buffer design makes the model independent of how
        // rows are chunked — the E18 determinism contract. `-B 64` puts
        // two full drain boundaries inside the 150-row corpus, so this
        // also pins seed-window invariance (seeding must not see rows
        // buffered beyond the batch about to drain).
        let ds = three_blobs();
        let mut whole = IncrementalKMeans::with_k(3);
        whole.set_option("-B", "64").unwrap();
        whole.build(&ds).unwrap();
        for chunk_rows in [1usize, 7, 64, 100] {
            let mut streamed = IncrementalKMeans::with_k(3);
            streamed.set_option("-B", "64").unwrap();
            let mut start = 0;
            while start < ds.num_instances() {
                let end = (start + chunk_rows).min(ds.num_instances());
                let rows: Vec<usize> = (start..end).collect();
                streamed.absorb(&ds.select_rows(&rows)).unwrap();
                start = end;
            }
            streamed.flush().unwrap();
            assert_eq!(
                streamed.encode_state(),
                whole.encode_state(),
                "chunk_rows {chunk_rows}"
            );
        }
    }

    #[test]
    fn state_roundtrip() {
        let ds = three_blobs();
        let mut km = IncrementalKMeans::with_k(3);
        km.build(&ds).unwrap();
        let mut km2 = IncrementalKMeans::new();
        km2.decode_state(&km.encode_state()).unwrap();
        for r in 0..ds.num_instances() {
            assert_eq!(
                km.cluster_instance(&ds, r).unwrap(),
                km2.cluster_instance(&ds, r).unwrap()
            );
        }
    }

    #[test]
    fn regression_pinned_centres() {
        // Deterministic seeding + updates ⇒ exact centres, pinned.
        let ds = three_blobs();
        let mut km = IncrementalKMeans::with_k(3);
        km.build(&ds).unwrap();
        let again = {
            let mut km2 = IncrementalKMeans::with_k(3);
            km2.build(&ds).unwrap();
            km2.encode_state()
        };
        assert_eq!(km.encode_state(), again);
        // Centres sit in distinct blobs (pairwise distance ≫ stddev).
        for i in 0..3 {
            for j in (i + 1)..3 {
                let d = seed_dist2(&km.centers[i], &km.centers[j]).sqrt();
                assert!(d > 3.0, "centres {i},{j} distance {d}");
            }
        }
    }

    #[test]
    fn rejects_all_nominal_data() {
        let ds = dm_data::corpus::weather_nominal();
        let mut km = IncrementalKMeans::new();
        assert!(matches!(km.build(&ds), Err(AlgoError::Unsupported(_))));
    }

    #[test]
    fn unbuilt_errors() {
        let ds = three_blobs();
        assert!(IncrementalKMeans::new().cluster_instance(&ds, 0).is_err());
        assert!(IncrementalKMeans::new().flush().is_err());
    }
}
