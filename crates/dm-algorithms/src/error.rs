//! Error type shared by all algorithm implementations.

use dm_data::DataError;
use std::fmt;

/// Result alias used throughout `dm-algorithms`.
pub type Result<T> = std::result::Result<T, AlgoError>;

/// Errors raised while training or applying algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoError {
    /// A dataset-layer error (parsing, arity, unknown attribute, ...).
    Data(DataError),
    /// The model has not been trained yet.
    NotTrained,
    /// Training data violates an algorithm precondition (message).
    Unsupported(String),
    /// An unknown algorithm name was requested from the registry.
    UnknownAlgorithm(String),
    /// An unknown or malformed option was supplied.
    BadOption {
        /// The option flag, e.g. `"-C"`.
        flag: String,
        /// What went wrong.
        message: String,
    },
    /// Model state bytes could not be decoded.
    BadState(String),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::Data(e) => write!(f, "data error: {e}"),
            AlgoError::NotTrained => write!(f, "model has not been trained"),
            AlgoError::Unsupported(m) => write!(f, "unsupported input: {m}"),
            AlgoError::UnknownAlgorithm(n) => write!(f, "unknown algorithm {n:?}"),
            AlgoError::BadOption { flag, message } => {
                write!(f, "bad option {flag}: {message}")
            }
            AlgoError::BadState(m) => write!(f, "bad model state: {m}"),
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgoError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for AlgoError {
    fn from(e: DataError) -> Self {
        AlgoError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            AlgoError::NotTrained.to_string(),
            "model has not been trained"
        );
        assert!(AlgoError::UnknownAlgorithm("X".into())
            .to_string()
            .contains("\"X\""));
        let e = AlgoError::BadOption {
            flag: "-C".into(),
            message: "not a number".into(),
        };
        assert_eq!(e.to_string(), "bad option -C: not a number");
    }

    #[test]
    fn data_error_converts_and_sources() {
        use std::error::Error;
        let e: AlgoError = DataError::NoClass.into();
        assert!(e.to_string().contains("class"));
        assert!(e.source().is_some());
    }
}
