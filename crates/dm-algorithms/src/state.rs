//! Binary model-state codec.
//!
//! §4.5 of the paper measures the cost of serialising an algorithm
//! instance to disk after every Web Service invocation (the default
//! Axis lifecycle) versus keeping it in memory. To reproduce that
//! experiment honestly, model state must round-trip through real bytes.
//! This module is a small self-describing tag-length-value writer and
//! reader — deliberately *not* a third-party serialisation framework,
//! because the encode/decode work itself is part of what E4 measures.

use crate::error::{AlgoError, Result};

/// Serialises primitive values into a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Create an empty writer.
    pub fn new() -> StateWriter {
        StateWriter { buf: Vec::new() }
    }

    /// Append an unsigned 64-bit integer.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize (stored as u64).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` (bit pattern preserved, so `NaN` round-trips).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a boolean.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Append a length-prefixed usize slice.
    pub fn put_usize_slice(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    /// Append a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Finish, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reads values back in the order they were written.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wrap a byte slice for reading.
    pub fn new(buf: &'a [u8]) -> StateReader<'a> {
        StateReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(AlgoError::BadState(format!(
                "truncated state: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Read a usize.
    pub fn get_usize(&mut self) -> Result<usize> {
        Ok(self.get_u64()? as usize)
    }

    /// Read an f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Read a bool.
    pub fn get_bool(&mut self) -> Result<bool> {
        Ok(self.take(1)?[0] != 0)
    }

    /// Read a length-prefixed string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_usize()?;
        if len > self.buf.len() {
            return Err(AlgoError::BadState(format!(
                "string length {len} exceeds buffer"
            )));
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec())
            .map_err(|e| AlgoError::BadState(format!("invalid utf-8 in state: {e}")))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.get_usize()?;
        if len > self.buf.len() {
            return Err(AlgoError::BadState(format!(
                "f64 vec length {len} exceeds buffer"
            )));
        }
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Read a length-prefixed usize vector.
    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>> {
        let len = self.get_usize()?;
        if len > self.buf.len() {
            return Err(AlgoError::BadState(format!(
                "usize vec length {len} exceeds buffer"
            )));
        }
        (0..len).map(|_| self.get_usize()).collect()
    }

    /// Read a length-prefixed raw byte slice.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_usize()?;
        if len > self.buf.len() {
            return Err(AlgoError::BadState(format!(
                "byte slice length {len} exceeds buffer"
            )));
        }
        Ok(self.take(len)?.to_vec())
    }

    /// `true` when the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A model whose full trained state can round-trip through bytes.
pub trait Stateful {
    /// Encode the trained state.
    fn encode_state(&self) -> Vec<u8>;
    /// Restore trained state previously produced by [`Stateful::encode_state`].
    fn decode_state(&mut self, bytes: &[u8]) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = StateWriter::new();
        w.put_u64(42);
        w.put_f64(-1.5);
        w.put_bool(true);
        w.put_str("hello κόσμε");
        w.put_f64_slice(&[1.0, f64::NAN, 3.0]);
        w.put_usize_slice(&[7, 8]);
        let bytes = w.into_bytes();

        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "hello κόσμε");
        let v = r.get_f64_vec().unwrap();
        assert_eq!(v.len(), 3);
        assert!(v[1].is_nan());
        assert_eq!(r.get_usize_vec().unwrap(), vec![7, 8]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_detected() {
        let mut w = StateWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..4]);
        assert!(matches!(r.get_u64(), Err(AlgoError::BadState(_))));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = StateWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(r.get_str().is_err());
        let mut r2 = StateReader::new(&bytes);
        assert!(r2.get_f64_vec().is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut w = StateWriter::new();
        w.put_bytes(&[1, 2, 3, 255]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3, 255]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn empty_writer() {
        let w = StateWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }
}
