//! Cross-crate integration tests for `faehim-rs` live in this
//! package's `tests/` directory; the library itself is empty.
