//! E18 — the streaming data plane across the simulated transport:
//! streamed-fold model equivalence, bounded-window back-pressure,
//! chunk-level pass-by-reference dedup, wire-cost agreement with
//! `RecordBatch::byte_len`, and the record-stream concurrency
//! contracts (blocking producer, receiver-drop errors).

use dm_data::corpus::{gaussian_blobs, nominal_classification, BlobSpec};
use dm_data::stream::{chunk_dataset, record_stream, RecordBatch, StreamHeader};
use dm_data::DataError;
use dm_services::client::StreamClient;
use dm_services::deploy::deploy_faehim_suite;
use dm_wsrf::error::WsError;
use dm_wsrf::soap::SoapValue;
use dm_wsrf::transport::{DataPlaneConfig, Network};
use std::sync::Arc;
use std::time::Duration;

fn network() -> Arc<Network> {
    let net = Arc::new(Network::new());
    let host = net.add_host("miner");
    deploy_faehim_suite(&host).unwrap();
    net
}

fn blobs(n: usize) -> dm_data::Dataset {
    gaussian_blobs(
        &[
            BlobSpec {
                center: vec![0.0, 0.0, 0.0],
                stddev: 0.4,
                count: n / 2,
            },
            BlobSpec {
                center: vec![8.0, 8.0, 8.0],
                stddev: 0.4,
                count: n - n / 2,
            },
        ],
        11,
    )
}

/// Tentpole acceptance: training over the streaming data plane yields a
/// model byte-identical to migrating the dataset and training locally —
/// for both online learners.
#[test]
fn streamed_fold_equals_migrate_then_train_over_transport() {
    use dm_algorithms::classifiers::{Classifier, HoeffdingTree};
    use dm_algorithms::cluster::{Clusterer, IncrementalKMeans};
    use dm_algorithms::options::Configurable;
    use dm_algorithms::state::Stateful;

    let net = network();
    let client = StreamClient::new(Arc::clone(&net), "miner");

    let nominal = nominal_classification(500, 4, 3, 2, 0.1, 5);
    let (id, _) = client
        .send_dataset(&nominal, 64, "HoeffdingTree", "", 8, Duration::ZERO)
        .unwrap();
    let mut local = HoeffdingTree::new();
    local.train(&nominal).unwrap();
    assert_eq!(client.model_state(&id).unwrap(), local.encode_state());

    let numeric = blobs(300);
    let (id, _) = client
        .send_dataset(&numeric, 64, "IncrementalKMeans", "-N 2", 8, Duration::ZERO)
        .unwrap();
    let mut km = IncrementalKMeans::new();
    km.set_option("-N", "2").unwrap();
    km.build(&numeric).unwrap();
    assert_eq!(client.model_state(&id).unwrap(), km.encode_state());

    // The live model serves assignments over the same transport.
    let assignments = client
        .assign_clusters(&id, &dm_data::arff::write_arff(&numeric))
        .unwrap();
    assert_eq!(assignments.len(), 300);
    let flips = assignments.windows(2).filter(|w| w[0] != w[1]).count();
    assert_eq!(flips, 1, "two well-separated blobs should split cleanly");
}

/// Satellite: the bounded in-flight window sheds with a retry hint and
/// the client's virtual-clock retry drains it — no chunk is lost and
/// the backlog never exceeds the window.
#[test]
fn bounded_window_backpressure_over_transport() {
    let net = network();
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let ds = nominal_classification(300, 4, 3, 2, 0.1, 5);
    let header = StreamHeader::of(&ds);
    let id = client
        .open_stream(&header, "RunningStats", "", 3, Duration::from_millis(4))
        .unwrap();
    for (seq, batch) in chunk_dataset(&ds, 25).unwrap().iter().enumerate() {
        let ack = client.send_chunk(&id, seq as u64, batch).unwrap();
        assert!(ack.backlog_chunks <= 3, "window overflowed");
    }
    let stats = client.stream_stats(&id).unwrap();
    assert_eq!(stats.rows, 300);
    assert_eq!(stats.chunks, 12);
    assert!(stats.busy_rejections > 0, "back-pressure never engaged");
    assert!(stats.peak_resident_rows <= 25);
    client.close_stream(&id).unwrap();
}

/// Satellite: `sendChunk` after `closeStream` faults as a Client error
/// across the transport instead of corrupting the sealed model.
#[test]
fn send_after_close_faults_over_transport() {
    let net = network();
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let ds = nominal_classification(60, 4, 3, 2, 0.1, 5);
    let header = StreamHeader::of(&ds);
    let id = client
        .open_stream(&header, "RunningStats", "", 8, Duration::ZERO)
        .unwrap();
    let batches = chunk_dataset(&ds, 20).unwrap();
    client.send_chunk(&id, 0, &batches[0]).unwrap();
    client.close_stream(&id).unwrap();
    let err = client.send_chunk(&id, 1, &batches[1]).unwrap_err();
    match err {
        WsError::Fault { code, message } => {
            assert_eq!(code, "Client");
            assert!(message.contains("closed"), "{message}");
        }
        other => panic!("expected fault, got {other:?}"),
    }
    // Closing twice is also a client error.
    assert!(client.close_stream(&id).is_err());
}

/// Satellite: a ragged batch is rejected at receive time with a typed
/// fault (this is the crash the seed's NaN-sentinel stream panicked on).
#[test]
fn ragged_batch_faults_over_transport() {
    let net = network();
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let ds = blobs(40);
    let header = StreamHeader::of(&ds);
    let id = client
        .open_stream(&header, "RunningStats", "", 8, Duration::ZERO)
        .unwrap();
    // A chunk whose schema disagrees with the stream header.
    let skinny = nominal_classification(10, 2, 2, 2, 0.0, 3);
    let err = client
        .send_chunk(&id, 0, &RecordBatch::from_rows(&skinny, 0..10))
        .unwrap_err();
    assert!(matches!(err, WsError::Fault { code, .. } if code == "Client"));
    // Locally-built ragged batches are caught by validation too.
    let mut ragged = RecordBatch::from_rows(&ds, 0..10);
    ragged.weights.truncate(4);
    match ragged.validate(&header).unwrap_err() {
        DataError::RaggedBatch { len, expected, .. } => {
            assert_eq!((len, expected), (4, 10));
        }
        other => panic!("expected RaggedBatch, got {other:?}"),
    }
}

/// Satellite: re-sending an identical chunk travels as a `DataRef`
/// handle once the data plane has seen it — chunk-level dedup on the
/// attachment store.
#[test]
fn repeated_chunks_pass_by_reference() {
    let net = network();
    net.enable_data_plane(DataPlaneConfig::default());
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let ds = blobs(400);
    let header = StreamHeader::of(&ds);
    let id = client
        .open_stream(&header, "RunningStats", "", 8, Duration::ZERO)
        .unwrap();
    // One chunk of 400 rows × 3 numeric attrs + class ≈ 11 KB — far
    // over the 1 KB inline threshold.
    let batch = &chunk_dataset(&ds, 400).unwrap()[0];
    assert!(batch.byte_len() > 1024);
    client.send_chunk(&id, 0, batch).unwrap();
    let before = net.wire_stats();
    // Duplicate delivery (an at-least-once retry): same bytes, so the
    // transport substitutes a handle instead of re-shipping the chunk.
    client.send_chunk(&id, 0, batch).unwrap();
    let after = net.wire_stats();
    assert_eq!(
        after.ref_substitutions,
        before.ref_substitutions + 1,
        "duplicate chunk did not pass by reference"
    );
    assert!(
        after.bytes_saved >= before.bytes_saved + batch.byte_len() as u64 / 2,
        "no meaningful wire savings: {} -> {}",
        before.bytes_saved,
        after.bytes_saved
    );
    // The duplicate was acked idempotently, not re-absorbed.
    assert_eq!(client.stream_stats(&id).unwrap().rows, 400);
}

/// Satellite: `RecordBatch::byte_len` agrees with what the transport
/// actually charges — the envelope for `sendChunk` costs at least the
/// batch's exact serialised size, and the host monitor sees it.
#[test]
fn byte_len_agrees_with_transport_cost() {
    let net = network();
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let ds = blobs(200);
    let header = StreamHeader::of(&ds);
    let id = client
        .open_stream(&header, "RunningStats", "", 8, Duration::ZERO)
        .unwrap();
    let batch = &chunk_dataset(&ds, 200).unwrap()[0];
    assert_eq!(batch.to_bytes().len(), batch.byte_len());
    net.reset_wire_stats();
    client.send_chunk(&id, 0, batch).unwrap();
    let wire = net.wire_stats();
    assert!(
        wire.bytes >= batch.byte_len() as u64,
        "wire charged {} bytes for a {}-byte chunk",
        wire.bytes,
        batch.byte_len()
    );
    // The host-side monitor accounts the same request.
    let host = net.host("miner").unwrap();
    let summaries = host.monitor().summary_by_operation(Some("DataStream"));
    let send = summaries
        .iter()
        .find(|s| s.operation == "sendChunk")
        .expect("sendChunk summary");
    assert_eq!(send.invocations, 1);
    assert!(send.bytes_in >= batch.byte_len());
}

/// Satellite: a producer thread blocks when the bounded record stream
/// is full and completes once the consumer drains — no deadlock, no
/// loss, chunks arrive in order.
#[test]
fn bounded_stream_blocks_producer_until_drained() {
    let ds = blobs(640);
    let batches = chunk_dataset(&ds, 64).unwrap();
    let total = batches.len();
    let (tx, rx) = record_stream(&ds, 2);
    let producer = std::thread::spawn(move || {
        for b in batches {
            tx.send(b).unwrap();
        }
    });
    // The producer cannot finish until we drain: with capacity 2 and 10
    // chunks it must block. Drain slowly and count arrivals.
    let mut seen = 0;
    let mut rows = 0;
    while let Some(batch) = rx.recv() {
        batch.validate(rx.header()).unwrap();
        seen += 1;
        rows += batch.num_rows();
    }
    producer.join().expect("producer thread panicked");
    assert_eq!(seen, total);
    assert_eq!(rows, 640);
}

/// Satellite: dropping the receiver mid-stream turns the producer's
/// next `send` into `DataError::StreamClosed` — a clean error, not a
/// hang or panic, even with the producer already blocked on a full
/// channel in another thread.
#[test]
fn send_after_receiver_drop_errors_across_threads() {
    let ds = blobs(640);
    let batches = chunk_dataset(&ds, 64).unwrap();
    let (tx, rx) = record_stream(&ds, 1);
    let producer = std::thread::spawn(move || {
        let mut sent = 0usize;
        for b in batches {
            match tx.send(b) {
                Ok(()) => sent += 1,
                Err(DataError::StreamClosed) => return Err(sent),
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        Ok(sent)
    });
    // Take one chunk, then hang up while the producer is mid-stream.
    let first = rx.recv().expect("first chunk");
    assert_eq!(first.num_rows(), 64);
    drop(rx);
    match producer.join().expect("producer thread panicked") {
        Err(sent) => assert!(sent < 10, "producer should have been cut off"),
        Ok(sent) => panic!("producer sent all {sent} chunks past a dropped receiver"),
    }
}

/// The imported WS-tool view of the new service: `DataStream` operations
/// are imported as workflow tools and are correctly marked impure.
#[test]
fn datastream_tools_import_as_impure() {
    let net = network();
    let host = net.host("miner").unwrap();
    let wsdl = host.wsdl_of("DataStream").unwrap();
    assert_eq!(wsdl.operations.len(), 7);
    for op in &wsdl.operations {
        assert!(
            !dm_services::is_pure_operation("DataStream", &op.name),
            "{} must not be memoised",
            op.name
        );
    }
    // Faults surface as WsError::Fault through the raw network path too.
    let err = net
        .invoke(
            "miner",
            "DataStream",
            "sendChunk",
            vec![("streamId".into(), SoapValue::Text("nope".into()))],
        )
        .unwrap_err();
    assert!(matches!(err, WsError::Fault { code, .. } if code == "Client"));
}
