//! E7 — the algorithm pool behind the services: the registry contract
//! (`getClassifiers`-style enumeration), the "20 different approaches"
//! to attribute selection, and cross-family sanity over shared data.

use dm_algorithms::registry;

#[test]
fn inventory_scale() {
    assert!(registry::classifier_names().len() >= 13);
    assert!(registry::clusterer_names().len() >= 5);
    assert!(registry::associator_names().len() >= 2);
    assert_eq!(dm_algorithms::attrsel::approaches().len(), 20);
    assert_eq!(registry::inventory_size(), 42);
}

#[test]
fn every_classifier_handles_breast_cancer() {
    let ds = dm_data::corpus::breast_cancer();
    for name in registry::classifier_names() {
        let mut c = registry::make_classifier(name).unwrap();
        if name == "MultilayerPerceptron" {
            // Keep the slowest trainer quick in CI.
            c.set_option("-N", "20").unwrap();
        }
        c.train(&ds).unwrap_or_else(|e| panic!("{name}: {e}"));
        let d = c.distribution(&ds, 0).unwrap();
        assert_eq!(d.len(), 2, "{name}");
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{name}");
        // State must round-trip for the §4.5 lifecycle.
        let mut restored = registry::make_classifier(name).unwrap();
        restored.decode_state(&c.encode_state()).unwrap();
        assert_eq!(
            c.predict(&ds, 0).unwrap(),
            restored.predict(&ds, 0).unwrap(),
            "{name} state roundtrip"
        );
    }
}

#[test]
fn every_clusterer_handles_blobs() {
    let ds = dm_data::corpus::gaussian_blobs(
        &[
            dm_data::corpus::BlobSpec {
                center: vec![0.0, 0.0],
                stddev: 0.3,
                count: 40,
            },
            dm_data::corpus::BlobSpec {
                center: vec![9.0, 9.0],
                stddev: 0.3,
                count: 40,
            },
        ],
        17,
    );
    for name in registry::clusterer_names() {
        let mut c = registry::make_clusterer(name).unwrap();
        if name == "Cobweb" {
            c.set_option("-A", "0.3").unwrap();
        }
        c.build(&ds).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Points from opposite blobs must not co-cluster for the flat
        // k=2 clusterers; Cobweb's leaf count just needs to be >= 2.
        assert!(c.num_clusters().unwrap() >= 2, "{name}");
        let a = c.cluster_instance(&ds, 0).unwrap();
        let b = c.cluster_instance(&ds, 79).unwrap();
        assert_ne!(a, b, "{name} failed to separate the blobs");
    }
}

#[test]
fn associators_agree() {
    let ds = dm_data::corpus::market_baskets(8, 250, &[(&[1, 2], 0.4)], 0.02, 5);
    let mut apriori = registry::make_associator("Apriori").unwrap();
    let mut fp = registry::make_associator("FPGrowth").unwrap();
    for m in [&mut apriori, &mut fp] {
        m.set_options(&[("-Z", "true"), ("-M", "0.25"), ("-C", "0.6"), ("-N", "30")])
            .unwrap();
    }
    let a = apriori.mine(&ds).unwrap();
    let b = fp.mine(&ds).unwrap();
    assert_eq!(a, b, "Apriori and FP-Growth disagree");
    assert!(!a.is_empty());
}

#[test]
#[ignore = "2^9 wrapped cross-validations; run with --ignored for the full sweep"]
fn wrapper_exhaustive_full_sweep() {
    let ds = dm_data::corpus::breast_cancer();
    let picked = dm_algorithms::attrsel::run_approach("Wrapper+Exhaustive", &ds, 3).unwrap();
    assert!(!picked.is_empty());
}

#[test]
fn attribute_selection_runs_all_approaches() {
    let ds = dm_data::corpus::breast_cancer();
    for approach in dm_algorithms::attrsel::approaches() {
        if approach.name == "Wrapper+Exhaustive" {
            continue; // 2^9 cross-validations; covered by the bench tier
        }
        let picked = dm_algorithms::attrsel::run_approach(&approach.name, &ds, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", approach.name));
        assert!(!picked.is_empty(), "{}", approach.name);
    }
}
