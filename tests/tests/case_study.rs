//! E3 — the §5 case study: four Web Services composed through the
//! workflow engine, reproducing every artifact the paper reports.

use faehim::casestudy::{build_case_study, run_case_study, run_case_study_on, BREAST_CANCER_URL};
use faehim::Toolkit;

#[test]
fn end_to_end_case_study() {
    let result = run_case_study().unwrap();
    assert!(result.model_text.contains("node-caps"));
    assert!(result.analysis.contains("root attribute: node-caps"));
    assert!(result.tree_svg.starts_with("<svg"));
    assert!(result.summary_table.contains("Num Instances 286"));
    assert_eq!(result.report.runs.len(), 10);
    assert_eq!(result.report.total_retries(), 0);
}

#[test]
fn case_study_consumes_network_time() {
    let toolkit = Toolkit::new().unwrap();
    toolkit.network().reset_virtual_time();
    run_case_study_on(&toolkit).unwrap();
    // The ARFF dataset crosses the wire several times; at 1 Gb/s with
    // 0.5 ms per-message latency the total must be measurable.
    let t = toolkit.network().virtual_time();
    assert!(t.as_micros() > 1000, "virtual time {t:?}");
}

#[test]
fn case_study_invocations_are_monitored() {
    let toolkit = Toolkit::new().unwrap();
    run_case_study_on(&toolkit).unwrap();
    let monitor = toolkit.container(toolkit.primary_host()).unwrap().monitor();
    let summary = monitor.summary(None);
    // readArff + getClassifiers + getOptions + classifyInstance +
    // classifyGraph + the direct summary call = 6 service invocations.
    assert!(
        summary.invocations >= 6,
        "only {} invocations",
        summary.invocations
    );
    assert_eq!(summary.faults, 0);
}

#[test]
fn url_reader_serves_case_study_url() {
    let toolkit = Toolkit::new().unwrap();
    let arff = toolkit
        .convert_client()
        .read_arff(BREAST_CANCER_URL)
        .unwrap();
    let ds = dm_data::arff::parse_arff(&arff).unwrap();
    assert_eq!(ds.num_instances(), 286);
}

#[test]
fn workflow_rewires_for_other_classifiers() {
    // The same composed graph drives a different algorithm by changing
    // the selection — the point of the *general* classifier service.
    let toolkit = Toolkit::new().unwrap();
    let (graph, tasks, mut bindings) = build_case_study(&toolkit).unwrap();
    let _ = (&graph, &tasks);
    // Rebuild with NaiveBayes selected; classifyGraph would fault (not
    // a tree), so run only up to the classify stage by replacing the
    // selector — here we simply call the client directly to verify the
    // swap works at the service level.
    bindings.clear();
    let model = toolkit
        .classifier_client()
        .classify_instance(
            &dm_data::corpus::breast_cancer_arff(),
            "NaiveBayes",
            "",
            "Class",
        )
        .unwrap();
    assert!(model.contains("Naive Bayes"));
}
