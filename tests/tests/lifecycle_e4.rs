//! E4 — the §4.5 serialisation penalty: repeated invocations of the
//! J48 Web Service under the default serialize-per-call lifecycle must
//! cost measurably more than under the in-memory harness, and the
//! lifecycle counters must reflect the mechanism.

use dm_services::j48_ws::J48Service;
use dm_wsrf::container::WebService;
use dm_wsrf::lifecycle::LifecyclePolicy;
use dm_wsrf::soap::SoapValue;
use std::time::Instant;

fn classify_args() -> Vec<(String, SoapValue)> {
    vec![
        (
            "dataset".to_string(),
            SoapValue::Text(dm_data::corpus::breast_cancer_arff()),
        ),
        ("attribute".to_string(), SoapValue::Text("Class".into())),
        ("options".to_string(), SoapValue::Text(String::new())),
    ]
}

fn run_n(service: &J48Service, n: usize) -> std::time::Duration {
    let args = classify_args();
    let start = Instant::now();
    for _ in 0..n {
        service.invoke("classify", &args).unwrap();
    }
    start.elapsed()
}

#[test]
fn per_call_policy_serialises_n_times() {
    let s = J48Service::new().unwrap();
    run_n(&s, 5);
    let (ser, de, hits) = s.lifecycle_stats();
    assert_eq!(ser, 5);
    assert_eq!(de, 4);
    assert_eq!(hits, 0);
}

#[test]
fn harness_never_serialises() {
    let s = J48Service::with_policy(LifecyclePolicy::InMemoryHarness).unwrap();
    run_n(&s, 5);
    let (ser, de, hits) = s.lifecycle_stats();
    assert_eq!(ser, 0);
    assert_eq!(de, 0);
    assert_eq!(hits, 4);
}

#[test]
fn harness_is_faster_for_repeated_invocation() {
    // The paper: "repeated invocations of a particular Web Service
    // often resulted in a significant performance penalty … the harness
    // [gave an] improvement in performance". Training dominates both
    // paths, so compare the non-training overhead via many invocations
    // and assert the harness is not slower (the full quantitative sweep
    // is bench e4_lifecycle).
    let n = 8;
    let per_call = J48Service::new().unwrap();
    let harness = J48Service::with_policy(LifecyclePolicy::InMemoryHarness).unwrap();
    // Warm up both (first call trains from scratch either way).
    run_n(&per_call, 1);
    run_n(&harness, 1);
    let t_per_call = run_n(&per_call, n);
    let t_harness = run_n(&harness, n);
    assert!(
        t_harness <= t_per_call * 2,
        "harness {t_harness:?} unexpectedly slower than per-call {t_per_call:?}"
    );
}

#[test]
fn predict_roundtrips_model_through_disk_state() {
    // Under serialize-per-call, predict() must restore the exact tree
    // the previous classify() stored.
    let s = J48Service::new().unwrap();
    s.invoke("classify", &classify_args()).unwrap();
    let out = s
        .invoke(
            "predict",
            &[
                (
                    "dataset".to_string(),
                    SoapValue::Text(dm_data::corpus::breast_cancer_arff()),
                ),
                ("attribute".to_string(), SoapValue::Text("Class".into())),
            ],
        )
        .unwrap();
    assert_eq!(out.as_list().unwrap().len(), 286);
}
