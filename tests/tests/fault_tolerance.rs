//! E9 — fault tolerance: transport failures are retried and migrated
//! to replica hosts so the workflow still completes (§3, category 2),
//! now with the resilience layer on top — scripted outage windows,
//! circuit breakers with half-open probes, and deadline-bounded
//! retry/backoff schedules.

use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskGraph, Token, Tool};
use dm_wsrf::prelude::{
    BreakerBoard, BreakerConfig, BreakerState, Network, ResiliencePolicy, ResilientCaller,
};
use faehim::Toolkit;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn classify_bindings(
    task: dm_workflow::graph::TaskId,
) -> HashMap<(dm_workflow::graph::TaskId, usize), Token> {
    let mut bindings = HashMap::new();
    bindings.insert(
        (task, 0),
        Token::Text(dm_data::corpus::breast_cancer_arff()),
    );
    bindings.insert((task, 1), Token::Text("Class".into()));
    bindings.insert((task, 2), Token::Text(String::new()));
    bindings
}

#[test]
fn dead_primary_migrates_to_replica() {
    let toolkit = Toolkit::with_hosts(&["a", "b"]).unwrap();
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    assert_eq!(classify.hosts(), ["a".to_string(), "b".to_string()]);
    toolkit.network().set_host_down("a", true);
    let out = classify
        .execute(&[
            Token::Text(dm_data::corpus::breast_cancer_arff()),
            Token::Text("Class".into()),
            Token::Text(String::new()),
        ])
        .unwrap();
    assert!(matches!(&out[0], Token::Text(t) if t.contains("node-caps")));
}

#[test]
fn workflow_completes_under_probabilistic_faults() {
    let toolkit = Toolkit::with_hosts(&["a", "b", "c"]).unwrap();
    let net = toolkit.network();
    // Import over a healthy network; inject faults afterwards (the
    // WSDL fetch itself crosses the same links).
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    net.set_failure_probability("a", 0.6);
    net.reseed_faults(1234);
    let mut graph = TaskGraph::new();
    let t = graph.add_task(Arc::new(classify));
    let bindings = classify_bindings(t);
    // Engine retries on top of host failover: enactment must succeed.
    let report = Executor::serial()
        .with_max_attempts(5)
        .run(&graph, &bindings)
        .unwrap();
    assert!(report.output(t, 0).is_some());
}

#[test]
fn all_hosts_down_fails_cleanly() {
    let toolkit = Toolkit::with_hosts(&["a", "b"]).unwrap();
    let net = toolkit.network();
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    net.set_host_down("a", true);
    net.set_host_down("b", true);
    let mut graph = TaskGraph::new();
    let t = graph.add_task(Arc::new(classify));
    let bindings = classify_bindings(t);
    let err = Executor::serial()
        .with_max_attempts(2)
        .run(&graph, &bindings)
        .unwrap_err();
    assert!(matches!(err, dm_workflow::WorkflowError::TaskFailed { .. }));
}

#[test]
fn scripted_outage_recovers_via_breaker_guided_failover() {
    let mut toolkit = Toolkit::with_hosts(&["a", "b"]).unwrap();
    toolkit.enable_resilience(
        ResiliencePolicy::default().attempts(2),
        BreakerConfig {
            min_calls: 2,
            ..BreakerConfig::default()
        },
    );
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = Arc::new(tools.remove(0));
    let net = toolkit.network();
    // Host "a" dies mid-run: a scripted outage window opens at the
    // current virtual instant and outlasts the whole workflow.
    let now = net.now();
    net.add_outage("a", now, now + Duration::from_secs(300));

    let mut graph = TaskGraph::new();
    let t = graph.add_task(Arc::clone(&classify) as Arc<dyn Tool>);
    let bindings = classify_bindings(t);
    let report = toolkit
        .resilient_executor(Some(4))
        .run(&graph, &bindings)
        .unwrap();
    assert!(report.output(t, 0).is_some());

    // The per-call record shows who served and what the detour cost:
    // two attempts (with backoff) burned on "a", then "b" answered.
    assert_eq!(classify.last_served_host(), Some("b".to_string()));
    let stats = classify.last_call_stats();
    assert!(stats.attempts >= 3, "attempts {}", stats.attempts);
    assert!(stats.backoff > Duration::ZERO);

    // The network monitor agrees: transport errors on "a", clean
    // service from "b".
    let hosts = net.monitor().summary_by_host();
    let a = hosts.iter().find(|h| h.host == "a").unwrap();
    assert!(
        a.transport_errors >= 2,
        "a saw {} transport errors",
        a.transport_errors
    );
    let b = hosts.iter().find(|h| h.host == "b").unwrap();
    assert!((b.failure_rate - 0.0).abs() < 1e-12);

    // Those failures tripped "a"'s breaker, and the tool demoted it, so
    // the next call is served by "b" without touching "a" at all.
    let board = toolkit.resilience().unwrap().board();
    assert_eq!(board.breaker("a").state(net.now()), BreakerState::Open);
    assert_eq!(classify.hosts(), ["b".to_string(), "a".to_string()]);
    let a_attempts_before = a.invocations;
    classify
        .execute(&[
            Token::Text(dm_data::corpus::breast_cancer_arff()),
            Token::Text("Class".into()),
            Token::Text(String::new()),
        ])
        .unwrap();
    let hosts = net.monitor().summary_by_host();
    let a = hosts.iter().find(|h| h.host == "a").unwrap();
    assert_eq!(
        a.invocations, a_attempts_before,
        "open breaker must not admit calls to a"
    );

    let degraded = toolkit.degraded_mode_report();
    assert!(degraded.contains("open breakers: a"), "{degraded}");
}

#[test]
fn breaker_half_open_probe_restores_service() {
    let mut toolkit = Toolkit::with_hosts(&["a"]).unwrap();
    toolkit.enable_resilience(
        ResiliencePolicy::default().attempts(1),
        BreakerConfig {
            min_calls: 2,
            open_for: Duration::from_millis(200),
            ..BreakerConfig::default()
        },
    );
    let caller = toolkit.resilience().unwrap().clone();
    let net = toolkit.network();
    net.set_host_down("a", true);

    // Repeated failures trip the breaker.
    for _ in 0..2 {
        assert!(caller
            .invoke("a", "Classifier", "getClassifiers", vec![])
            .is_err());
    }
    assert_eq!(
        caller.board().breaker("a").state(net.now()),
        BreakerState::Open
    );

    // While open, calls fail fast without touching the network.
    let events_before = net.monitor().len();
    let err = caller
        .invoke("a", "Classifier", "getClassifiers", vec![])
        .unwrap_err();
    assert!(
        matches!(err, dm_wsrf::WsError::CircuitOpen(_)),
        "got: {err}"
    );
    assert_eq!(net.monitor().len(), events_before);

    // The host recovers; once the open window lapses a half-open probe
    // is admitted, succeeds, and closes the breaker.
    net.set_host_down("a", false);
    net.advance_virtual_time(Duration::from_millis(250));
    assert_eq!(
        caller.board().breaker("a").state(net.now()),
        BreakerState::HalfOpen
    );
    let names = caller
        .invoke("a", "Classifier", "getClassifiers", vec![])
        .unwrap();
    assert!(!names.as_list().unwrap().is_empty());
    assert_eq!(
        caller.board().breaker("a").state(net.now()),
        BreakerState::Closed
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn retry_schedules_terminate_within_the_deadline_budget(
        deadline_ms in 1u64..1_000,
        attempts in 1u32..16,
        base_us in 100u64..50_000,
        cap_ms in 1u64..500,
        seed in any::<u64>(),
    ) {
        // Whatever the policy shape, a call against a dead host must
        // terminate, and the backoff it charges to the virtual clock
        // must stay inside the deadline budget.
        let net = Arc::new(Network::new());
        net.add_host("dead");
        net.set_host_down("dead", true);
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_millis(cap_ms).max(base);
        let policy = ResiliencePolicy::with_deadline(Duration::from_millis(deadline_ms))
            .attempts(attempts)
            .backoff(base, cap);
        let caller = ResilientCaller::new(
            Arc::clone(&net),
            Arc::new(BreakerBoard::new(BreakerConfig {
                // Effectively disabled: this property is about the
                // retry/backoff schedule, not breaker behaviour.
                failure_rate_to_open: 2.0,
                ..BreakerConfig::default()
            })),
            policy,
        )
        .with_seed(seed);

        let before = net.now();
        let (result, stats) =
            caller.invoke_collect("dead", "Classifier", "getClassifiers", vec![]);
        let elapsed = net.now() - before;
        prop_assert!(result.is_err());
        prop_assert!(stats.attempts <= attempts);
        prop_assert!(
            stats.backoff < policy.deadline,
            "backoff {:?} must stay under deadline {:?}",
            stats.backoff,
            policy.deadline
        );
        // Elapsed virtual time = backoff charged plus per-attempt wire
        // costs; the backoff part never overruns the deadline.
        prop_assert!(elapsed >= stats.backoff);
    }
}

#[test]
fn injected_faults_do_not_corrupt_results() {
    // With failover, the result must equal the failure-free run.
    let clean_toolkit = Toolkit::with_hosts(&["x"]).unwrap();
    let clean = clean_toolkit
        .j48_client()
        .classify(&dm_data::corpus::breast_cancer_arff(), "Class", "")
        .unwrap();

    let toolkit = Toolkit::with_hosts(&["a", "b"]).unwrap();
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    toolkit.network().set_host_down("a", true);
    let out = classify
        .execute(&[
            Token::Text(dm_data::corpus::breast_cancer_arff()),
            Token::Text("Class".into()),
            Token::Text(String::new()),
        ])
        .unwrap();
    assert_eq!(out[0], Token::Text(clean));
}
