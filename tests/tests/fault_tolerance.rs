//! E9 — fault tolerance: transport failures are retried and migrated
//! to replica hosts so the workflow still completes (§3, category 2).

use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskGraph, Token, Tool};
use faehim::Toolkit;
use std::collections::HashMap;
use std::sync::Arc;

fn classify_bindings(
    task: dm_workflow::graph::TaskId,
) -> HashMap<(dm_workflow::graph::TaskId, usize), Token> {
    let mut bindings = HashMap::new();
    bindings.insert((task, 0), Token::Text(dm_data::corpus::breast_cancer_arff()));
    bindings.insert((task, 1), Token::Text("Class".into()));
    bindings.insert((task, 2), Token::Text(String::new()));
    bindings
}

#[test]
fn dead_primary_migrates_to_replica() {
    let toolkit = Toolkit::with_hosts(&["a", "b"]).unwrap();
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    assert_eq!(classify.hosts(), ["a".to_string(), "b".to_string()]);
    toolkit.network().set_host_down("a", true);
    let out = classify
        .execute(&[
            Token::Text(dm_data::corpus::breast_cancer_arff()),
            Token::Text("Class".into()),
            Token::Text(String::new()),
        ])
        .unwrap();
    assert!(matches!(&out[0], Token::Text(t) if t.contains("node-caps")));
}

#[test]
fn workflow_completes_under_probabilistic_faults() {
    let toolkit = Toolkit::with_hosts(&["a", "b", "c"]).unwrap();
    let net = toolkit.network();
    // Import over a healthy network; inject faults afterwards (the
    // WSDL fetch itself crosses the same links).
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    net.set_failure_probability("a", 0.6);
    net.reseed_faults(1234);
    let mut graph = TaskGraph::new();
    let t = graph.add_task(Arc::new(classify));
    let bindings = classify_bindings(t);
    // Engine retries on top of host failover: enactment must succeed.
    let report = Executor::serial()
        .with_max_attempts(5)
        .run(&graph, &bindings)
        .unwrap();
    assert!(report.output(t, 0).is_some());
}

#[test]
fn all_hosts_down_fails_cleanly() {
    let toolkit = Toolkit::with_hosts(&["a", "b"]).unwrap();
    let net = toolkit.network();
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    net.set_host_down("a", true);
    net.set_host_down("b", true);
    let mut graph = TaskGraph::new();
    let t = graph.add_task(Arc::new(classify));
    let bindings = classify_bindings(t);
    let err = Executor::serial().with_max_attempts(2).run(&graph, &bindings).unwrap_err();
    assert!(matches!(err, dm_workflow::WorkflowError::TaskFailed { .. }));
}

#[test]
fn injected_faults_do_not_corrupt_results() {
    // With failover, the result must equal the failure-free run.
    let clean_toolkit = Toolkit::with_hosts(&["x"]).unwrap();
    let clean = clean_toolkit
        .j48_client()
        .classify(&dm_data::corpus::breast_cancer_arff(), "Class", "")
        .unwrap();

    let toolkit = Toolkit::with_hosts(&["a", "b"]).unwrap();
    let mut tools = toolkit.import_service("a", "J48").unwrap();
    let classify = tools.remove(0);
    toolkit.network().set_host_down("a", true);
    let out = classify
        .execute(&[
            Token::Text(dm_data::corpus::breast_cancer_arff()),
            Token::Text("Class".into()),
            Token::Text(String::new()),
        ])
        .unwrap();
    assert_eq!(out[0], Token::Text(clean));
}
