//! E1 — Figure 3: the breast-cancer dataset summary table must match
//! the published figure exactly, both computed locally and served by
//! the DataConversion Web Service.

use dm_data::corpus::breast_cancer;
use dm_data::summary::DatasetSummary;

#[test]
fn figure3_header_block() {
    let s = DatasetSummary::of(&breast_cancer());
    assert_eq!(s.num_instances, 286);
    assert_eq!(s.num_attributes, 10);
    assert_eq!(s.num_continuous, 0);
    assert_eq!(s.num_int, 0);
    assert_eq!(s.num_real, 0);
    assert_eq!(s.num_discrete, 10);
    assert_eq!(s.missing_values, 9);
    assert_eq!(s.missing_pct, 0.3);
}

#[test]
fn figure3_per_attribute_rows() {
    let s = DatasetSummary::of(&breast_cancer());
    // (name, nominal%, missing, distinct) straight from the figure.
    let expected: [(&str, u32, usize, usize); 10] = [
        ("age", 100, 0, 6),
        ("menopause", 100, 0, 3),
        ("tumor-size", 100, 0, 11),
        ("inv-nodes", 100, 0, 7),
        ("node-caps", 97, 8, 2),
        ("deg-malig", 100, 0, 3),
        ("breast", 100, 0, 2),
        ("breast-quad", 100, 1, 5),
        ("irradiat", 100, 0, 2),
        ("Class", 100, 0, 2),
    ];
    for (row, (name, pct, missing, distinct)) in s.attributes.iter().zip(expected) {
        assert_eq!(row.name, name);
        assert_eq!(row.type_name, "Enum", "{name}");
        assert_eq!(row.nominal_pct, pct, "{name} nominal%");
        assert_eq!(row.missing, missing, "{name} missing");
        assert_eq!(row.distinct, distinct, "{name} distinct");
    }
}

#[test]
fn figure3_served_by_web_service() {
    let toolkit = faehim::Toolkit::new().unwrap();
    let table = toolkit
        .convert_client()
        .summary(&dm_data::corpus::breast_cancer_arff())
        .unwrap();
    assert!(table.contains("Num Instances 286"));
    assert!(table.contains("Missing values 9 / 0.3%"));
    for name in ["age", "menopause", "tumor-size", "inv-nodes", "node-caps"] {
        assert!(table.contains(name), "{name} missing from served table");
    }
}

#[test]
fn class_balance_matches_paper_intro() {
    // §5.1: "201 instances of one class and 85 instances of another".
    let ds = breast_cancer();
    assert_eq!(ds.class_counts().unwrap(), vec![201.0, 85.0]);
}
