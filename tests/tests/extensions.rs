//! Extension coverage: the paper-mentioned capabilities beyond the core
//! case study — relational data access (§5.4 future work), session
//! management (§5.4), preprocessing, the signal-processing toolbox
//! (§2), workflow iteration (§3.1), and incremental/streaming learning.

use dm_wsrf::soap::SoapValue;
use faehim::Toolkit;

#[test]
fn relational_query_feeds_classifier_over_the_wire() {
    let toolkit = Toolkit::new().unwrap();
    let net = toolkit.network();
    let host = toolkit.primary_host().to_string();
    let arff = net
        .invoke(
            &host,
            "DataAccess",
            "query",
            vec![
                ("resource".into(), SoapValue::Text("breast_cancer".into())),
                ("select".into(), SoapValue::Text(String::new())),
                ("where".into(), SoapValue::Text("node-caps=no".into())),
                ("limit".into(), SoapValue::Int(i64::MAX)),
            ],
        )
        .unwrap();
    let ds = dm_data::arff::parse_arff(arff.as_text().unwrap()).unwrap();
    assert_eq!(ds.num_instances(), 222); // pinned contingency margin
    let model = toolkit
        .classifier_client()
        .classify_instance(arff.as_text().unwrap(), "NaiveBayes", "", "Class")
        .unwrap();
    assert!(model.contains("Naive Bayes"));
}

#[test]
fn session_state_survives_between_calls() {
    let toolkit = Toolkit::new().unwrap();
    let net = toolkit.network();
    let host = toolkit.primary_host().to_string();
    let id = net
        .invoke(&host, "Session", "createSession", vec![])
        .unwrap()
        .as_text()
        .unwrap()
        .to_string();
    net.invoke(
        &host,
        "Session",
        "putAttribute",
        vec![
            ("sessionId".into(), SoapValue::Text(id.clone())),
            ("key".into(), SoapValue::Text("classifier".into())),
            ("value".into(), SoapValue::Text("J48".into())),
        ],
    )
    .unwrap();
    let got = net
        .invoke(
            &host,
            "Session",
            "getAttribute",
            vec![
                ("sessionId".into(), SoapValue::Text(id.clone())),
                ("key".into(), SoapValue::Text("classifier".into())),
            ],
        )
        .unwrap();
    assert_eq!(got, SoapValue::Text("J48".into()));
    net.invoke(
        &host,
        "Session",
        "closeSession",
        vec![("sessionId".into(), SoapValue::Text(id))],
    )
    .unwrap();
}

#[test]
fn preprocess_normalize_over_the_wire() {
    let toolkit = Toolkit::new().unwrap();
    let blobs = dm_data::corpus::gaussian_blobs(
        &[
            dm_data::corpus::BlobSpec {
                center: vec![100.0],
                stddev: 5.0,
                count: 20,
            },
            dm_data::corpus::BlobSpec {
                center: vec![900.0],
                stddev: 5.0,
                count: 20,
            },
        ],
        8,
    );
    let out = toolkit
        .network()
        .invoke(
            toolkit.primary_host(),
            "Preprocess",
            "normalize",
            vec![(
                "dataset".into(),
                SoapValue::Text(dm_data::arff::write_arff(&blobs)),
            )],
        )
        .unwrap();
    let ds = dm_data::arff::parse_arff(out.as_text().unwrap()).unwrap();
    for r in 0..ds.num_instances() {
        let v = ds.value(r, 0);
        assert!((0.0..=1.0).contains(&v), "value {v} outside [0,1]");
    }
}

#[test]
fn signal_toolbox_registered_and_composable() {
    let toolkit = Toolkit::new().unwrap();
    let toolbox = toolkit.toolbox();
    assert_eq!(toolbox.tools_in("SignalProcessing").len(), 5);
    // FFT output feeds nothing type-incompatible: list → list.
    let mut g = dm_workflow::graph::TaskGraph::new();
    let gen = g.add_task(std::sync::Arc::new(faehim::signal_tools::SignalGen::sine(
        60.0, 1000.0, 256,
    )));
    let fft = g.add_task(toolbox.find("FFT").unwrap());
    g.connect(gen, 0, fft, 0).unwrap();
    let report = dm_workflow::engine::Executor::serial()
        .run(&g, &std::collections::HashMap::new())
        .unwrap();
    match report.output(fft, 0).unwrap() {
        dm_workflow::graph::Token::List(items) => assert_eq!(items.len(), 512),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn iteration_driver_refines_a_model_parameter() {
    // §3.1's loop: keep coarsening J48's -M until the tree is small
    // enough — the driver plays the interactive user.
    use dm_workflow::graph::{PortSpec, Token, Tool};
    use dm_workflow::iterate::{iterate, Feedback, LoopDecision};
    use std::sync::Arc;

    struct TrainWithM;

    impl Tool for TrainWithM {
        fn name(&self) -> &str {
            "TrainWithM"
        }

        fn input_ports(&self) -> Vec<PortSpec> {
            vec![PortSpec::new("m", "long")]
        }

        fn output_ports(&self) -> Vec<PortSpec> {
            vec![
                PortSpec::new("nextM", "long"),
                PortSpec::new("size", "long"),
            ]
        }

        fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
            use dm_algorithms::options::Configurable;
            let m = match inputs[0] {
                Token::Int(m) => m,
                _ => return Err("expected m".into()),
            };
            let ds = dm_data::corpus::breast_cancer();
            let mut j48 = dm_algorithms::classifiers::J48::new();
            j48.set_option("-M", &m.to_string())
                .map_err(|e| e.to_string())?;
            use dm_algorithms::classifiers::Classifier;
            j48.train(&ds).map_err(|e| e.to_string())?;
            Ok(vec![
                Token::Int(m * 2),
                Token::Int(j48.tree_size().unwrap_or(0) as i64),
            ])
        }
    }

    let mut g = dm_workflow::graph::TaskGraph::new();
    let t = g.add_task(Arc::new(TrainWithM));
    let mut bindings = std::collections::HashMap::new();
    bindings.insert((t, 0), Token::Int(2));
    let feedback = [Feedback {
        from_task: t,
        from_port: 0,
        to_task: t,
        to_port: 0,
    }];
    let result = iterate(
        &dm_workflow::engine::Executor::serial(),
        &g,
        &bindings,
        &feedback,
        10,
        |_, report| match report.output(t, 1) {
            Some(&Token::Int(size)) if size <= 3 => LoopDecision::Stop,
            _ => LoopDecision::Continue,
        },
    )
    .unwrap();
    assert!(
        result.iterations >= 2,
        "coarsening should take several steps"
    );
    match result.final_report.output(t, 1) {
        Some(&Token::Int(size)) => assert!(size <= 3),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn incremental_naive_bayes_matches_batch_via_stream() {
    use dm_algorithms::classifiers::{Classifier, NaiveBayes};
    let ds = dm_data::corpus::breast_cancer();
    let mut batch = NaiveBayes::new();
    batch.train(&ds).unwrap();

    let (tx, rx) = dm_data::stream::record_stream(&ds, 4);
    let src = ds.clone();
    let producer = std::thread::spawn(move || tx.send_dataset(&src, 32).unwrap());
    // Seed from the first batch, stream the rest.
    let mut streaming: Option<NaiveBayes> = None;
    let header = ds.header_clone();
    while let Some(chunk) = rx.recv() {
        match streaming.as_mut() {
            None => {
                let mut seed = header.clone();
                for i in 0..chunk.num_rows() {
                    seed.push_row(chunk.row_values(i)).unwrap();
                }
                let mut nb = NaiveBayes::new();
                nb.train(&seed).unwrap();
                streaming = Some(nb);
            }
            Some(nb) => nb.update_batch(&chunk).unwrap(),
        }
    }
    producer.join().unwrap();
    let streaming = streaming.unwrap();
    assert_eq!(streaming.observed_weight(), 286.0);
    for r in 0..ds.num_instances() {
        assert_eq!(
            batch.predict(&ds, r).unwrap(),
            streaming.predict(&ds, r).unwrap()
        );
    }
}
