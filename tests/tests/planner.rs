//! E20 — the cost- and locality-aware composition planner end to end:
//! cold-start validity, tombstone/breaker exclusion, capacity
//! spreading, per-seed determinism, and byte-identical mining outputs
//! regardless of where the planner places the steps.

use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskId, Token};
use dm_workflow::planner::{Goal, GoalStep, Planner, PlannerConfig};
use dm_wsrf::costmodel::{CostModel, DATA_REF_WIRE_BYTES};
use dm_wsrf::fleet::{GossipConfig, GossipRegistry};
use dm_wsrf::registry::ServiceEntry;
use dm_wsrf::resilience::{BreakerBoard, BreakerConfig};
use faehim::Toolkit;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn entry(service: &str, host: &str, category: &str) -> ServiceEntry {
    ServiceEntry {
        name: service.to_string(),
        host: host.to_string(),
        wsdl_url: format!("http://{host}/axis/{service}?wsdl"),
        categories: vec![category.to_string()],
        description: String::new(),
    }
}

/// Candidate supplier over fixed per-category sets.
fn by_category(
    sets: &[(String, Vec<ServiceEntry>)],
) -> impl Fn(&GoalStep) -> Vec<ServiceEntry> + '_ {
    move |step: &GoalStep| {
        sets.iter()
            .find(|(cat, _)| *cat == step.category)
            .map(|(_, hits)| hits.clone())
            .unwrap_or_default()
    }
}

proptest! {
    /// Cold start: with an entirely empty telemetry snapshot, any goal
    /// with at least one candidate per step plans successfully, every
    /// chosen replica comes from the step's candidate set, and the
    /// per-host capacity budget holds.
    #[test]
    fn empty_telemetry_always_yields_a_valid_plan(
        steps in 1usize..5,
        hosts in 1usize..4,
        payload in 0usize..65_536,
        seed in any::<u64>(),
        capacity in 1usize..5,
    ) {
        // Keep the instance feasible (vendored proptest has no
        // prop_assume): raise the budget until the hosts can take it.
        let capacity = capacity.max(steps.div_ceil(hosts));
        let sets: Vec<(String, Vec<ServiceEntry>)> = (0..steps)
            .map(|s| {
                let cat = format!("cat{s}");
                let cands = (0..hosts)
                    .map(|h| entry(&format!("Svc{s}"), &format!("host-{h}"), &cat))
                    .collect();
                (cat, cands)
            })
            .collect();
        let goal = Goal {
            steps: (0..steps)
                .map(|s| GoalStep {
                    category: format!("cat{s}"),
                    operation: "op".into(),
                    payload_bytes: payload,
                })
                .collect(),
        };
        let planner = Planner::new(PlannerConfig { seed, host_capacity: capacity });
        let plan = planner
            .plan(&goal, &by_category(&sets), &CostModel::new(), None)
            .expect("cold start must plan");
        prop_assert_eq!(plan.assignments.len(), steps);
        let mut per_host: HashMap<&str, usize> = HashMap::new();
        for (i, a) in plan.assignments.iter().enumerate() {
            prop_assert!(
                sets[i].1.iter().any(|e| e.host == a.host && e.name == a.service),
                "step {} bound outside its candidate set", i
            );
            *per_host.entry(a.host.as_str()).or_insert(0) += 1;
        }
        prop_assert!(per_host.values().all(|&n| n <= capacity));
    }

    /// Determinism: the plan is a pure function of (goal, candidates,
    /// snapshot, seed) — replanning yields an identical assignment.
    #[test]
    fn replanning_with_the_same_seed_is_identical(
        seed in any::<u64>(),
        load_a in 0u64..20,
        load_b in 0u64..20,
    ) {
        let sets = vec![
            ("l".to_string(), vec![entry("Load", "a", "l"), entry("Load", "b", "l")]),
            ("m".to_string(), vec![entry("Mine", "a", "m"), entry("Mine", "b", "m")]),
        ];
        let goal = Goal::chain(&[("l", "op", 8_192), ("m", "op", 8_192)]);
        let mut cost = CostModel::new();
        cost.observe_loads(&[("a".to_string(), load_a), ("b".to_string(), load_b)].into());
        let planner = Planner::seeded(seed);
        let first = planner.plan(&goal, &by_category(&sets), &cost, None).unwrap();
        let second = planner.plan(&goal, &by_category(&sets), &cost, None).unwrap();
        prop_assert_eq!(first, second);
    }
}

#[test]
fn gossip_tombstones_and_stale_replicas_never_get_planned() {
    // Three replicas gossip; one deregisters (tombstone), one goes
    // silent past the freshness horizon. Across many seeds the planner
    // only ever places on the live one.
    let gossip = GossipRegistry::new(&["observer"], GossipConfig::default());
    let node = gossip.node("observer").expect("seed node");
    let now = Duration::from_secs(60);
    for host in ["live", "drained", "stale"] {
        node.publish(entry("Miner", host, "mining"), Duration::from_secs(1));
    }
    node.heartbeat("Miner", "live", now);
    node.heartbeat("Miner", "stale", Duration::from_secs(2)); // long silent
    node.deregister("Miner", "drained", now);

    let freshness = Duration::from_secs(30);
    let view = node.view_snapshot();
    let candidates = Planner::live_candidates(&view, "mining", now, freshness);
    assert_eq!(candidates.len(), 1, "only the live replica survives");

    let goal = Goal::chain(&[("mining", "op", 2_048)]);
    for seed in 0..32 {
        let plan = Planner::seeded(seed)
            .plan(&goal, &|_| candidates.clone(), &CostModel::new(), None)
            .unwrap();
        assert_eq!(plan.assignments[0].host, "live", "seed {seed}");
    }
}

#[test]
fn open_breaker_hosts_are_excluded_for_every_seed() {
    let board = BreakerBoard::new(BreakerConfig::default());
    for _ in 0..64 {
        board.breaker("tripped").record_failure(Duration::ZERO);
    }
    let mut cost = CostModel::new();
    cost.observe_breakers(&board, Duration::ZERO);
    // The tripped host is otherwise the cheapest (idle); the healthy
    // one carries load. Breakers must still win.
    cost.observe_loads(&[("healthy".to_string(), 10)].into());

    let sets = vec![(
        "m".to_string(),
        vec![entry("M", "tripped", "m"), entry("M", "healthy", "m")],
    )];
    let goal = Goal::chain(&[("m", "op", 1_000)]);
    for seed in 0..32 {
        let plan = Planner::seeded(seed)
            .plan(&goal, &by_category(&sets), &cost, None)
            .unwrap();
        assert_eq!(plan.assignments[0].host, "healthy", "seed {seed}");
    }
}

#[test]
fn data_intensive_steps_colocate_and_capacity_spreads_them() {
    let sets = vec![
        (
            "a".to_string(),
            vec![entry("A", "h1", "a"), entry("A", "h2", "a")],
        ),
        (
            "b".to_string(),
            vec![entry("B", "h1", "b"), entry("B", "h2", "b")],
        ),
        (
            "c".to_string(),
            vec![entry("C", "h1", "c"), entry("C", "h2", "c")],
        ),
    ];
    let goal = Goal::chain(&[
        ("a", "op", 32_768),
        ("b", "op", 32_768),
        ("c", "op", 32_768),
    ]);

    // Default capacity: the whole data-intensive chain rides one host,
    // paying full freight once and DataRef handles after.
    let plan = Planner::default()
        .plan(&goal, &by_category(&sets), &CostModel::new(), None)
        .unwrap();
    assert_eq!(plan.hosts().len(), 1);
    assert!(plan.assignments[1].colocated && plan.assignments[2].colocated);
    assert_eq!(
        plan.predicted_bytes_moved,
        32_768 + 2 * DATA_REF_WIRE_BYTES as u64
    );

    // Capacity 1 forbids co-location: three steps, three hosts... but
    // only two exist, so the plan is infeasible and says so.
    let narrow = Planner::new(PlannerConfig {
        seed: 7,
        host_capacity: 1,
    });
    let err = narrow
        .plan(&goal, &by_category(&sets), &CostModel::new(), None)
        .unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");

    // Capacity 2 spreads across both hosts.
    let wider = Planner::new(PlannerConfig {
        seed: 7,
        host_capacity: 2,
    });
    let spread = wider
        .plan(&goal, &by_category(&sets), &CostModel::new(), None)
        .unwrap();
    assert_eq!(spread.hosts().len(), 2);
    assert!(spread.predicted_bytes_moved > plan.predicted_bytes_moved);
}

#[test]
fn queue_depth_telemetry_moves_the_plan_off_the_busy_host() {
    let sets = vec![
        (
            "a".to_string(),
            vec![entry("A", "busy", "a"), entry("A", "calm", "a")],
        ),
        (
            "b".to_string(),
            vec![entry("B", "busy", "b"), entry("B", "calm", "b")],
        ),
    ];
    let goal = Goal::chain(&[("a", "op", 16_384), ("b", "op", 16_384)]);

    let mut cost = CostModel::new();
    cost.observe_loads(&[("busy".to_string(), 40)].into());
    let plan = Planner::default()
        .plan(&goal, &by_category(&sets), &cost, None)
        .unwrap();
    assert!(
        plan.assignments.iter().all(|a| a.host == "calm"),
        "40 queued requests must push the whole chain to the calm host: {plan:?}"
    );
}

/// The core E20 invariant: two plans of the same goal that land on
/// *different* hosts still enact byte-identical results — placement
/// moves cost, never answers. Forced placements come from rigged cost
/// snapshots; reports are compared by canonical bytes, which include
/// task names (placement-independent by construction) and outputs.
#[test]
fn different_placements_enact_byte_identical_outputs() {
    let tk = Toolkit::with_hosts(&["wesc-a", "wesc-b", "wesc-c"]).unwrap();
    let csv = dm_data::csv::write_csv(&dm_data::corpus::breast_cancer());
    let goal = Goal::chain(&[
        ("data-handling", "csvToArff", csv.len()),
        ("classifier", "classify", csv.len()),
    ]);
    let now = tk.network().now();
    let freshness = Duration::from_secs(300);
    let registry = tk.registry();
    let network = tk.network();
    // Fan each category hit out across the hosts that deploy it (the
    // UDDI registry keys by service name, so a hit names the service,
    // not a replica) — the same enumeration Toolkit::plan_composition
    // performs.
    let hosts = tk.hosts().to_vec();
    let candidates = move |step: &GoalStep| {
        registry
            .find_by_category_healthy(&step.category, now, freshness)
            .into_iter()
            .flat_map(|e| {
                let network = &network;
                hosts.iter().filter_map(move |host| {
                    let exposes = network
                        .host(host)
                        .ok()
                        .and_then(|c| c.wsdl_of(&e.name).ok())
                        .is_some_and(|w| w.operations.iter().any(|o| o.name == step.operation));
                    exposes.then(|| ServiceEntry {
                        host: host.clone(),
                        ..e.clone()
                    })
                })
            })
            .collect::<Vec<_>>()
    };

    let mut canonical: Vec<Vec<u8>> = Vec::new();
    let mut placements: Vec<String> = Vec::new();
    for crowd in [
        ["wesc-b", "wesc-c"],
        ["wesc-a", "wesc-c"],
        ["wesc-a", "wesc-b"],
    ] {
        // Rig the snapshot: two hosts look swamped, the third is free.
        let mut cost = CostModel::new();
        let loads: HashMap<String, u64> = crowd.iter().map(|h| (h.to_string(), 50)).collect();
        cost.observe_loads(&loads);
        let plan = Planner::default()
            .plan(&goal, &candidates, &cost, None)
            .unwrap();
        placements.push(plan.assignments[0].host.clone());
        let (graph, tasks) = plan.bind(tk.network()).unwrap();

        let mut bindings: HashMap<(TaskId, usize), Token> = HashMap::new();
        bindings.insert((tasks[0], 0), Token::Text(csv.clone()));
        bindings.insert((tasks[1], 1), Token::Text("Class".into()));
        bindings.insert((tasks[1], 2), Token::Text(String::new()));
        let report = Executor::serial().run(&graph, &bindings).unwrap();
        canonical.push(report.canonical_bytes());
    }
    placements.sort();
    placements.dedup();
    assert_eq!(
        placements.len(),
        3,
        "the rigged snapshots must actually force three distinct placements"
    );
    assert!(
        canonical.windows(2).all(|w| w[0] == w[1]),
        "mining outputs must be byte-identical regardless of placement"
    );
}

/// Planner determinism across compute-pool widths: the pool size (the
/// CI matrix's `FAEHIM_POOL_THREADS`) influences execution scheduling,
/// never planning or results.
#[test]
fn plans_and_outputs_agree_across_pool_widths() {
    let tk = Toolkit::with_hosts(&["wesc-a", "wesc-b"]).unwrap();
    let csv = dm_data::csv::write_csv(&dm_data::corpus::breast_cancer());
    let goal = Goal::chain(&[
        ("data-handling", "csvToArff", csv.len()),
        ("classifier", "classify", csv.len()),
    ]);
    let mut canonical: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 4] {
        tk.set_compute_threads(threads);
        let (plan_a, graph, tasks) = tk.plan_composition(&goal, &Planner::default()).unwrap();
        let (plan_b, _, _) = tk.plan_composition(&goal, &Planner::default()).unwrap();
        assert_eq!(
            plan_a, plan_b,
            "replanning must be stable at {threads} threads"
        );
        let mut bindings: HashMap<(TaskId, usize), Token> = HashMap::new();
        bindings.insert((tasks[0], 0), Token::Text(csv.clone()));
        bindings.insert((tasks[1], 1), Token::Text("Class".into()));
        bindings.insert((tasks[1], 2), Token::Text(String::new()));
        let report = Executor::parallel().run(&graph, &bindings).unwrap();
        canonical.push(report.canonical_bytes());
    }
    assert_eq!(
        canonical[0], canonical[1],
        "pool width must not change planned-composition results"
    );
}
