//! E19 — the federated fleet end to end: gossip convergence bounds,
//! tombstone propagation, deterministic power-of-two-choices routing
//! (byte-identical across runs and pool widths), and the queue-depth/
//! p99 autoscaler on the virtual clock.

use dm_algorithms::pool;
use dm_wsrf::container::{CapacityConfig, ServiceFault, WebService};
use dm_wsrf::fleet::{
    splitmix64, Autoscaler, AutoscalerConfig, Fleet, FleetConfig, GossipConfig, GossipRegistry,
    P2cRouter, ScaleAction,
};
use dm_wsrf::registry::ServiceEntry;
use dm_wsrf::soap::SoapValue;
use dm_wsrf::transport::Network;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic stand-in for a mining service: `mine(row)` returns
/// a pure function of the row id, so any two replicas agree on every
/// answer and output divergence can only come from routing bugs.
struct PulseService;

impl WebService for PulseService {
    fn name(&self) -> &str {
        "Pulse"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Pulse", "http://localhost/Pulse").operation(Operation::new(
            "mine",
            vec![Part::new("row", "long")],
            Part::new("label", "long"),
        ))
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "mine" => {
                let row = args
                    .iter()
                    .find(|(n, _)| n == "row")
                    .and_then(|(_, v)| v.as_int().ok())
                    .ok_or_else(|| ServiceFault::client("missing row"))?;
                Ok(SoapValue::Int((splitmix64(row as u64) % 7) as i64))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

fn pulse_fleet(replicas: usize, routing_seed: u64) -> (Arc<Network>, Fleet) {
    let net = Arc::new(Network::new());
    let mut config = FleetConfig::new("Pulse");
    config.capacity = CapacityConfig {
        workers: 1,
        queue_limit: Some(4),
        service_time: Duration::from_millis(1),
    };
    config.routing_seed = routing_seed;
    let fleet = Fleet::new(
        Arc::clone(&net),
        config,
        Arc::new(|| Arc::new(PulseService)),
    );
    for _ in 0..replicas {
        fleet.add_replica(net.now());
    }
    fleet.gossip().sync(replicas + 2).expect("mesh converges");
    (net, fleet)
}

/// Drive `n` open-loop arrivals 300µs apart; record each answer (or a
/// shed) and the serving replica.
fn drive(net: &Network, fleet: &Fleet, n: u32) -> (Vec<Option<i64>>, Vec<Option<String>>) {
    let mut outputs = Vec::with_capacity(n as usize);
    let mut servers = Vec::with_capacity(n as usize);
    let mut t = Duration::ZERO;
    for i in 0..n {
        t += Duration::from_micros(300);
        net.set_virtual_time(t);
        if i % 16 == 0 {
            fleet.heartbeat_all(t);
            fleet.gossip().run_round();
        }
        match fleet.invoke(t, "mine", vec![("row".into(), SoapValue::Int(i as i64))]) {
            Ok(v) => {
                outputs.push(Some(v.as_int().unwrap()));
                servers.push(fleet.last_served());
            }
            Err(e) if e.is_server_busy() => {
                outputs.push(None);
                servers.push(None);
            }
            Err(e) => panic!("unexpected failure at arrival {i}: {e}"),
        }
    }
    (outputs, servers)
}

// --- routing determinism -------------------------------------------------

#[test]
fn same_seed_runs_are_byte_identical() {
    let (net_a, fleet_a) = pulse_fleet(3, 0xE19);
    let (net_b, fleet_b) = pulse_fleet(3, 0xE19);
    let a = drive(&net_a, &fleet_a, 256);
    let b = drive(&net_b, &fleet_b, 256);
    // Not just the answers — the full routing trace (which replica
    // served each request) must repeat.
    assert_eq!(a, b);
}

#[test]
fn routing_is_byte_identical_across_pool_widths() {
    let narrow = pool::with_threads(1, || {
        let (net, fleet) = pulse_fleet(4, 0xE19);
        drive(&net, &fleet, 256)
    });
    let wide = pool::with_threads(4, || {
        let (net, fleet) = pulse_fleet(4, 0xE19);
        drive(&net, &fleet, 256)
    });
    assert_eq!(narrow, wide);
}

#[test]
fn outputs_agree_across_replica_counts_and_seeds() {
    let (net_a, fleet_a) = pulse_fleet(2, 0xE19);
    let (net_b, fleet_b) = pulse_fleet(4, 0xE19 ^ 0x5EED);
    let (out_a, _) = drive(&net_a, &fleet_a, 256);
    let (out_b, _) = drive(&net_b, &fleet_b, 256);
    let mut common = 0;
    for (i, (x, y)) in out_a.iter().zip(&out_b).enumerate() {
        if let (Some(x), Some(y)) = (x, y) {
            assert_eq!(x, y, "request {i} mined different answers");
            common += 1;
        }
    }
    assert!(common > 128, "only {common} commonly-served requests");
}

#[test]
fn p2c_order_is_a_pure_function_of_seed_and_draw() {
    let candidates: Vec<String> = (0..6).map(|i| format!("h{i}")).collect();
    let loads: HashMap<String, u64> = candidates
        .iter()
        .enumerate()
        .map(|(i, h)| (h.clone(), (i as u64 * 3) % 5))
        .collect();
    let trace = |seed| {
        let router = P2cRouter::new(seed);
        (0..64)
            .map(|_| router.order(&candidates, &loads))
            .collect::<Vec<_>>()
    };
    assert_eq!(trace(7), trace(7));
    assert_ne!(
        trace(7),
        trace(8),
        "distinct seeds should explore distinct orders"
    );
}

// --- gossip convergence --------------------------------------------------

fn entry(service: &str, host: &str) -> ServiceEntry {
    ServiceEntry {
        name: service.into(),
        host: host.into(),
        wsdl_url: format!("http://{host}/axis/{service}?wsdl"),
        categories: vec!["datamining".into()],
        description: format!("{service} on {host}"),
    }
}

#[test]
fn gossip_converges_within_bounded_rounds() {
    // The ring successor edge alone carries every record all the way
    // around in at most N-1 rounds; the seeded fanout only accelerates.
    let hosts: Vec<String> = (0..9).map(|i| format!("n{i}")).collect();
    let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
    let registry = GossipRegistry::new(&refs, GossipConfig::default());
    let now = Duration::from_secs(1);
    for node in registry.nodes() {
        let host = node.host().to_string();
        node.publish(entry("Pulse", &host), now);
    }
    let rounds = registry.sync(hosts.len()).expect("must converge");
    assert!(rounds < hosts.len(), "took {rounds} rounds for 9 nodes");
    for node in registry.nodes() {
        assert_eq!(
            node.view_len(),
            hosts.len(),
            "{} has a partial view",
            node.host()
        );
        assert_eq!(
            node.live_hosts("Pulse", now, Duration::from_secs(30)).len(),
            hosts.len()
        );
    }
}

#[test]
fn tombstones_propagate_to_every_view() {
    let (net, fleet) = pulse_fleet(4, 0xE19);
    let drained = fleet.drain_replica(net.now()).expect("a replica to drain");
    fleet.gossip().sync(8).expect("tombstone round converges");
    let now = net.now();
    for node in fleet.gossip().nodes() {
        let live = node.live_hosts("Pulse", now, Duration::from_secs(30));
        assert!(
            !live.contains(&drained),
            "{} still routes to drained {drained}",
            node.host()
        );
        assert_eq!(live.len(), 3);
    }
    // A tombstoned replica never serves again.
    let (outputs, servers) = drive(&net, &fleet, 64);
    assert!(outputs.iter().any(Option::is_some));
    assert!(servers.iter().flatten().all(|h| *h != drained));
}

// --- autoscaler ----------------------------------------------------------

#[test]
fn autoscaler_grows_under_load_and_drains_when_idle() {
    let (net, fleet) = pulse_fleet(1, 0xE19);
    let scaler = Autoscaler::new(AutoscalerConfig {
        min_replicas: 1,
        max_replicas: 4,
        queue_high: 2.0,
        p99_high: Duration::from_millis(4),
        queue_low: 0.5,
        cooldown: Duration::from_millis(5),
    });

    // Overload phase: arrivals every 300µs against µ = 1000 req/s.
    let mut t = Duration::ZERO;
    let mut ups = 0;
    for i in 0..400u32 {
        t += Duration::from_micros(300);
        net.set_virtual_time(t);
        if i % 16 == 0 {
            fleet.heartbeat_all(t);
            fleet.gossip().run_round();
        }
        let _ = fleet.invoke(t, "mine", vec![("row".into(), SoapValue::Int(i as i64))]);
        if i % 25 == 24
            && fleet.autoscale_tick(t, &scaler, Duration::from_millis(6)) == ScaleAction::Up
        {
            ups += 1;
        }
    }
    assert!(ups >= 1, "overload never triggered a scale-up");
    assert!(fleet.active_replicas().len() > 1);

    // Idle phase: no arrivals, healthy p99 → the fleet drains back.
    let mut downs = 0;
    for tick in 0..20u64 {
        t += Duration::from_millis(10);
        net.set_virtual_time(t);
        fleet.heartbeat_all(t);
        fleet.gossip().run_round();
        let _ = tick;
        if fleet.autoscale_tick(t, &scaler, Duration::from_micros(500)) == ScaleAction::Down {
            downs += 1;
        }
    }
    assert!(downs >= 1, "idle fleet never drained");
    assert!(
        !fleet.active_replicas().is_empty(),
        "min_replicas must hold"
    );
    assert!(fleet.active_replicas().len() >= scaler.config().min_replicas);

    // The decision log reflects both phases.
    let history = scaler.history();
    assert!(history.iter().any(|e| e.action == ScaleAction::Up));
    assert!(history.iter().any(|e| e.action == ScaleAction::Down));
}
