//! E6 — Figure 2's component inventory: the provisioned toolkit must
//! contain the engine, the three local tool groups, the imported
//! service tools, and the published registry.

use faehim::Toolkit;

#[test]
fn figure2_components_present() {
    let toolkit = Toolkit::new().unwrap();
    let toolbox = toolkit.toolbox();

    // Three local tool groups of §4.3 plus Common.
    for folder in ["Common", "DataManipulation", "Processing", "Visualization"] {
        assert!(
            toolbox.folders().iter().any(|f| f == folder),
            "folder {folder} missing"
        );
    }
    // Imported Web Service tool folders.
    let ws_folders: Vec<String> = toolbox
        .folders()
        .into_iter()
        .filter(|f| f.starts_with("WebServices."))
        .collect();
    assert_eq!(ws_folders.len(), 14, "{ws_folders:?}");

    // The registry holds the published suite.
    assert_eq!(toolkit.registry().len(), 14);

    // The description names the key components.
    let text = toolkit.describe_components();
    for needle in [
        "Workflow engine",
        "DataManipulation/",
        "Visualization/",
        "Classifier @",
        "42 registered algorithms",
    ] {
        assert!(text.contains(needle), "{needle} missing from:\n{text}");
    }
}

#[test]
fn toolbox_tools_are_instantiable_in_graphs() {
    let toolkit = Toolkit::new().unwrap();
    let toolbox = toolkit.toolbox();
    let mut graph = dm_workflow::graph::TaskGraph::new();
    // Every registered tool can be placed as a task.
    let mut placed = 0;
    for folder in toolbox.folders() {
        for tool_name in toolbox.tools_in(&folder) {
            let tool = toolbox.find(&tool_name).unwrap();
            graph.add_task(tool);
            placed += 1;
        }
    }
    assert_eq!(placed, toolbox.len());
    assert!(placed > 25, "only {placed} tools");
}

#[test]
fn registry_inquiry_paths() {
    let toolkit = Toolkit::new().unwrap();
    let reg = toolkit.registry();
    assert_eq!(reg.find("Classifier").unwrap().host, toolkit.primary_host());
    assert_eq!(reg.find_by_category("datamining").len(), 6);
    assert!(reg.find("NoSuchService").is_err());
}
