//! E10 — pattern operators and hierarchical services over real Web
//! Service tools: star fan-out of classifier calls, grouped
//! sub-workflows, and parallel-vs-serial equivalence.

use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskGraph, Token, Tool};
use dm_workflow::group::GroupTool;
use dm_workflow::patterns;
use faehim::Toolkit;
use std::collections::HashMap;
use std::sync::Arc;

#[test]
fn star_of_cross_validations() {
    // Fan the dataset out to several classifier evaluations (the
    // Grid-WEKA distribution pattern) and enact in parallel.
    let toolkit = Toolkit::new().unwrap();
    let mut graph = TaskGraph::new();
    let source = graph.add_task(Arc::new(faehim::tools::LocalDataset::breast_cancer()));

    let classifiers = ["ZeroR", "OneR", "NaiveBayes"];
    let mut bindings = HashMap::new();
    let workers = patterns::widen_star(
        &mut graph,
        source,
        0,
        || {
            let tools = toolkit
                .import_service(toolkit.primary_host(), "Classifier")
                .unwrap();
            Arc::new(
                tools
                    .into_iter()
                    .find(|t| t.name().ends_with(".crossValidate"))
                    .unwrap(),
            )
        },
        classifiers.len(),
    )
    .unwrap();
    for (&worker, name) in workers.iter().zip(classifiers) {
        bindings.insert((worker, 1), Token::Text(name.to_string()));
        bindings.insert((worker, 2), Token::Text(String::new()));
        bindings.insert((worker, 3), Token::Text("Class".to_string()));
        bindings.insert((worker, 4), Token::Int(5));
    }

    let serial = Executor::serial().run(&graph, &bindings).unwrap();
    let parallel = Executor::parallel().run(&graph, &bindings).unwrap();
    for &w in &workers {
        let s = serial.output(w, 0).unwrap();
        let p = parallel.output(w, 0).unwrap();
        assert_eq!(s, p, "parallel result diverged");
        assert!(matches!(s, Token::Text(t) if t.contains("Correctly Classified")));
    }
}

#[test]
fn pipeline_pattern_over_services() {
    // csvToArff → summary, as a pipeline of imported operation tools.
    let toolkit = Toolkit::new().unwrap();
    let toolbox = toolkit.toolbox();
    let mut graph = TaskGraph::new();
    let ids = patterns::pipeline(
        &mut graph,
        vec![
            toolbox.find("DataConversion.csvToArff").unwrap(),
            toolbox.find("DataConversion.summary").unwrap(),
        ],
    )
    .unwrap();
    let mut bindings = HashMap::new();
    bindings.insert(
        (ids[0], 0),
        Token::Text("age,class\n30,a\n40,b\n".to_string()),
    );
    let report = Executor::serial().run(&graph, &bindings).unwrap();
    assert!(matches!(
        report.output(ids[1], 0),
        Some(Token::Text(t)) if t.contains("Num Instances 2")
    ));
}

#[test]
fn hierarchical_service_wraps_classification() {
    // A group exposing one input (the dataset) and one output (the
    // model): "a single service made up of a number of others".
    let toolkit = Toolkit::new().unwrap();
    let toolbox = toolkit.toolbox();
    let mut inner = TaskGraph::new();
    let attr = inner.add_task(Arc::new(faehim::tools::AttributeSelector::new("Class")));
    let classify = inner.add_task(toolbox.find("J48.classify").unwrap());
    inner.connect(attr, 0, classify, 1).unwrap();
    // classify inputs: dataset(0), attribute(1), options(2).
    // Expose dataset twice is impossible (one port one cable), so the
    // group exposes classify.dataset and attr.dataset separately and
    // the caller feeds both; options is exposed as a third input.
    let group = GroupTool::new(
        "J48Classification",
        inner,
        vec![(classify, 0), (attr, 0), (classify, 2)],
        vec![(classify, 0)],
    )
    .unwrap();

    let mut outer = TaskGraph::new();
    let data = outer.add_task(Arc::new(faehim::tools::LocalDataset::breast_cancer()));
    let g = outer.add_task(Arc::new(group));
    outer.connect(data, 0, g, 0).unwrap();
    outer.connect(data, 0, g, 1).unwrap();
    let mut bindings = HashMap::new();
    bindings.insert((g, 2), Token::Text(String::new()));
    let report = Executor::serial().run(&outer, &bindings).unwrap();
    assert!(matches!(
        report.output(g, 0),
        Some(Token::Text(t)) if t.contains("node-caps")
    ));
}

#[test]
fn parallel_star_speedup_shape() {
    // With per-task compute, a width-4 star should not be slower in
    // parallel than serially (allowing generous noise margins).
    let toolkit = Toolkit::new().unwrap();
    let mut graph = TaskGraph::new();
    let source = graph.add_task(Arc::new(faehim::tools::LocalDataset::breast_cancer()));
    let workers = patterns::widen_star(
        &mut graph,
        source,
        0,
        || {
            let tools = toolkit
                .import_service(toolkit.primary_host(), "Classifier")
                .unwrap();
            Arc::new(
                tools
                    .into_iter()
                    .find(|t| t.name().ends_with(".crossValidate"))
                    .unwrap(),
            )
        },
        4,
    )
    .unwrap();
    let mut bindings = HashMap::new();
    for &w in &workers {
        bindings.insert((w, 1), Token::Text("J48".to_string()));
        bindings.insert((w, 2), Token::Text(String::new()));
        bindings.insert((w, 3), Token::Text("Class".to_string()));
        bindings.insert((w, 4), Token::Int(10));
    }
    let serial = Executor::serial().run(&graph, &bindings).unwrap();
    let parallel = Executor::parallel().run(&graph, &bindings).unwrap();
    assert!(
        parallel.elapsed <= serial.elapsed * 3 / 2,
        "parallel {:?} vs serial {:?}",
        parallel.elapsed,
        serial.elapsed
    );
}
