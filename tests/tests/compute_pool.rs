//! Determinism contract of the shared compute pool: every parallelised
//! kernel (ensemble training, ensemble voting, k-means assignment,
//! parallel cross-validation, batched service scoring) must produce
//! byte-identical results at every thread count. These properties pin
//! that contract across random seeds and pool sizes {1, 2, 8}.

use dm_algorithms::cluster::{Clusterer, KMeans};
use dm_algorithms::options::Configurable;
use dm_algorithms::pool;
use dm_algorithms::registry::make_classifier;
use dm_algorithms::state::Stateful;
use proptest::prelude::*;

/// Pool sizes every property is checked at; 1 is the serial reference.
const POOL_SIZES: [usize; 3] = [1, 2, 8];

/// Train a fresh classifier of `name` (with `-S` = seed, `-I` =
/// members) under `threads` pool threads and return its encoded state.
fn trained_state(
    name: &str,
    members: &str,
    seed: u32,
    ds: &dm_data::Dataset,
    threads: usize,
) -> Vec<u8> {
    pool::with_threads(threads, || {
        let mut c = make_classifier(name).unwrap();
        c.set_option("-I", members).unwrap();
        c.set_option("-S", &seed.to_string()).unwrap();
        c.train(ds).unwrap();
        c.encode_state()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_forest_state_identical_at_every_pool_size(seed in any::<u32>(), noise in 0.0f64..0.4) {
        let ds = dm_data::corpus::nominal_classification(80, 4, 3, 2, noise, seed as u64);
        let reference = trained_state("RandomForest", "8", seed, &ds, 1);
        for threads in [2, 8] {
            let state = trained_state("RandomForest", "8", seed, &ds, threads);
            prop_assert!(state == reference, "forest state diverged at {threads} threads");
        }
    }

    #[test]
    fn bagging_state_identical_at_every_pool_size(seed in any::<u32>(), noise in 0.0f64..0.4) {
        let ds = dm_data::corpus::nominal_classification(70, 4, 3, 2, noise, seed as u64);
        let reference = trained_state("Bagging", "6", seed, &ds, 1);
        for threads in [2, 8] {
            let state = trained_state("Bagging", "6", seed, &ds, threads);
            prop_assert!(state == reference, "bagging state diverged at {threads} threads");
        }
    }

    #[test]
    fn ensemble_votes_identical_at_every_pool_size(seed in any::<u32>()) {
        let ds = dm_data::corpus::nominal_classification(60, 4, 3, 2, 0.2, seed as u64);
        let mut forest = make_classifier("RandomForest").unwrap();
        forest.set_option("-I", "20").unwrap();
        forest.set_option("-S", &seed.to_string()).unwrap();
        pool::with_threads(1, || forest.train(&ds)).unwrap();
        for row in 0..ds.num_instances().min(8) {
            let reference = pool::with_threads(1, || forest.distribution(&ds, row)).unwrap();
            for threads in [2, 8] {
                let dist = pool::with_threads(threads, || forest.distribution(&ds, row)).unwrap();
                let same = reference.len() == dist.len()
                    && reference.iter().zip(&dist).all(|(a, b)| a.to_bits() == b.to_bits());
                prop_assert!(same, "vote fold diverged at {threads} threads on row {row}");
            }
        }
    }

    #[test]
    fn kmeans_state_and_assignments_identical_at_every_pool_size(
        seed in any::<u32>(),
        k in 2usize..5,
    ) {
        let ds = dm_data::corpus::nominal_classification(90, 5, 3, 2, 0.3, seed as u64);
        let build = |threads: usize| {
            pool::with_threads(threads, || {
                let mut km = KMeans::with_k(k);
                km.set_option("-S", &seed.to_string()).unwrap();
                km.build(&ds).unwrap();
                let assigns = km.assignments(&ds).unwrap();
                (km.encode_state(), assigns)
            })
        };
        let (ref_state, ref_assigns) = build(1);
        for threads in [2, 8] {
            let (state, assigns) = build(threads);
            prop_assert!(state == ref_state, "k-means state diverged at {threads} threads");
            prop_assert_eq!(&assigns, &ref_assigns, "assignments diverged at {} threads", threads);
        }
    }

    #[test]
    fn ibk_columnar_scan_identical_at_every_pool_size(seed in any::<u32>(), k in 1usize..6) {
        // Big enough to cross IBk's parallel-scan threshold, so the
        // columnar distance kernel runs both serially and blocked.
        let ds = dm_data::corpus::nominal_classification(1100, 4, 3, 2, 0.25, seed as u64);
        let mut c = make_classifier("IBk").unwrap();
        c.set_option("-K", &k.to_string()).unwrap();
        pool::with_threads(1, || c.train(&ds)).unwrap();
        let score = |threads: usize| {
            pool::with_threads(threads, || {
                (0..8).map(|r| c.distribution(&ds, r).unwrap()).collect::<Vec<_>>()
            })
        };
        let reference = score(1);
        for threads in [2, 8] {
            let dists = score(threads);
            let same = reference.iter().zip(&dists).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
            });
            prop_assert!(same, "IBk columnar scan diverged at {threads} threads");
        }
    }

    #[test]
    fn predict_batch_matches_serial_predicts_at_every_pool_size(seed in any::<u32>()) {
        // The batched scoring path must be the concatenation of per-row
        // predicts at every pool width (300 rows crosses the batch
        // fan-out threshold).
        let ds = dm_data::corpus::nominal_classification(300, 4, 3, 2, 0.25, seed as u64);
        let mut c = make_classifier("NaiveBayes").unwrap();
        pool::with_threads(1, || c.train(&ds)).unwrap();
        let serial: Vec<usize> =
            (0..ds.num_instances()).map(|r| c.predict(&ds, r).unwrap()).collect();
        for threads in POOL_SIZES {
            let batch = pool::with_threads(threads, || c.predict_batch(&ds).unwrap());
            prop_assert_eq!(&batch, &serial, "batch predictions diverged at {} threads", threads);
        }
    }

    #[test]
    fn parallel_cv_equals_serial_cv_at_every_pool_size(seed in any::<u32>(), folds in 2usize..6) {
        let ds = dm_data::corpus::nominal_classification(60, 4, 3, 2, 0.25, seed as u64);
        let make = || make_classifier("NaiveBayes");
        let serial = dm_algorithms::eval::cross_validate(make, &ds, folds, seed as u64).unwrap();
        for threads in POOL_SIZES {
            let pooled = pool::with_threads(threads, || {
                dm_algorithms::eval::cross_validate_parallel(make, &ds, folds, seed as u64)
            })
            .unwrap();
            prop_assert!(pooled == serial, "CV diverged at {threads} threads");
        }
    }
}

#[test]
fn batched_scoring_byte_identical_across_pool_sizes() {
    // End-to-end: the classifyInstances operation through the typed
    // client must return the same SOAP-decoded predictions at every
    // pool size (the envelope path is exercised in dm-services tests;
    // here the whole toolkit stack is in the loop).
    let toolkit = faehim::Toolkit::new().unwrap();
    let arff = dm_data::corpus::breast_cancer_arff();
    let client = toolkit.classifier_client();
    let reference = pool::with_threads(1, || {
        client
            .classify_instances(&arff, "J48", "", "Class", &arff)
            .unwrap()
    });
    assert_eq!(reference.len(), 286);
    for threads in [2, 8] {
        let preds = pool::with_threads(threads, || {
            client
                .classify_instances(&arff, "J48", "", "Class", &arff)
                .unwrap()
        });
        assert_eq!(
            preds, reference,
            "batch predictions diverged at {threads} threads"
        );
    }
}

#[test]
fn pool_env_override_is_respected() {
    // FAEHIM_POOL_THREADS is read once at first pool touch; the
    // explicit setter wins afterwards. This pins the setter +
    // current_threads round-trip the CI matrix relies on.
    pool::set_global_threads(3);
    assert_eq!(pool::current_threads(), 3);
    pool::with_threads(5, || assert_eq!(pool::current_threads(), 5));
    assert_eq!(pool::current_threads(), 3);
}
