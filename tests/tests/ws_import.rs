//! E5 — Figure 1's import behaviour: providing a WSDL interface
//! creates one workspace tool per operation, with ports mirroring the
//! message parts, usable inside composed workflows.

use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskGraph, Token, Tool};
use faehim::Toolkit;
use std::collections::HashMap;
use std::sync::Arc;

#[test]
fn one_tool_per_operation() {
    let toolkit = Toolkit::new().unwrap();
    let tools = toolkit
        .import_service(toolkit.primary_host(), "Classifier")
        .unwrap();
    let names: Vec<&str> = tools.iter().map(|t| t.name()).collect();
    assert_eq!(
        names,
        vec![
            "Classifier.getClassifiers",
            "Classifier.getOptions",
            "Classifier.classifyInstance",
            "Classifier.classifyGraph",
            "Classifier.classifyInstances",
            "Classifier.crossValidate",
            "Classifier.getCacheStats",
        ]
    );
}

#[test]
fn imported_batch_tool_scores_instances() {
    // The batched operation decodes through the same WsTool path: one
    // envelope in, a list token of predicted labels out.
    let toolkit = Toolkit::new().unwrap();
    let tools = toolkit
        .import_service(toolkit.primary_host(), "Classifier")
        .unwrap();
    let batch = tools
        .iter()
        .find(|t| t.name().ends_with("classifyInstances"))
        .unwrap();
    assert_eq!(batch.input_ports().len(), 5);
    assert_eq!(batch.input_ports()[4].name, "instances");
    assert_eq!(batch.output_ports()[0].type_name, "list");
    let arff = dm_data::corpus::breast_cancer_arff();
    let out = batch
        .execute(&[
            Token::Text(arff.clone()),
            Token::Text("J48".to_string()),
            Token::Text(String::new()),
            Token::Text("Class".to_string()),
            Token::Text(arff),
        ])
        .unwrap();
    match &out[0] {
        Token::List(preds) => {
            assert_eq!(preds.len(), 286);
            assert!(matches!(&preds[0], Token::Text(label)
                if label == "no-recurrence-events" || label == "recurrence-events"));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn imported_ports_mirror_wsdl_parts() {
    let toolkit = Toolkit::new().unwrap();
    let tools = toolkit
        .import_service(toolkit.primary_host(), "Classifier")
        .unwrap();
    let classify = tools
        .iter()
        .find(|t| t.name().ends_with("classifyInstance"))
        .unwrap();
    let inputs = classify.input_ports();
    assert_eq!(inputs.len(), 4);
    assert_eq!(inputs[0].name, "dataset");
    assert_eq!(inputs[1].name, "classifier");
    assert_eq!(inputs[2].name, "options");
    assert_eq!(inputs[3].name, "attribute");
    assert_eq!(classify.output_ports()[0].type_name, "string");
}

#[test]
fn imported_tool_runs_in_workflow() {
    let toolkit = Toolkit::new().unwrap();
    let mut tools = toolkit
        .import_service(toolkit.primary_host(), "DataConversion")
        .unwrap();
    let idx = tools
        .iter()
        .position(|t| t.name().ends_with(".csvToArff"))
        .unwrap();
    let csv_to_arff = tools.remove(idx);
    let mut g = TaskGraph::new();
    let t = g.add_task(Arc::new(csv_to_arff));
    let mut bindings = HashMap::new();
    bindings.insert((t, 0), Token::Text("a,b\n1,x\n2,y\n".to_string()));
    let report = Executor::serial().run(&g, &bindings).unwrap();
    match report.output(t, 0).unwrap() {
        Token::Text(arff) => assert!(arff.contains("@attribute a numeric")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn every_deployed_service_imports() {
    let toolkit = Toolkit::new().unwrap();
    let mut total_tools = 0;
    for entry in toolkit.registry().all() {
        let tools = toolkit.import_service(&entry.host, &entry.name).unwrap();
        assert!(!tools.is_empty(), "{} produced no tools", entry.name);
        total_tools += tools.len();
    }
    assert!(total_tools >= 25, "only {total_tools} operation tools");
}

#[test]
fn case_study_taskgraph_xml_reimports_and_runs() {
    // Export the composed case study, re-import it purely from the
    // toolbox (tools resolved by name, as Triana does), and enact the
    // re-imported graph — the full share-a-workflow-as-XML path.
    let toolkit = Toolkit::new().unwrap();
    let (graph, _, bindings) = faehim::casestudy::build_case_study(&toolkit).unwrap();
    let xml = dm_workflow::xml::export_taskgraph(&graph);
    let imported = dm_workflow::xml::import_taskgraph(&xml, &toolkit.toolbox()).unwrap();
    assert_eq!(imported.num_tasks(), graph.num_tasks());
    assert_eq!(imported.cables(), graph.cables());
    // Bindings carry over by (task, port) because import preserves ids.
    let report = Executor::serial().run(&imported, &bindings).unwrap();
    let viewer = imported.find_task("TreeViewer").unwrap();
    match report.output(viewer, 0) {
        Some(Token::Text(model)) => assert!(model.contains("node-caps")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn wsdl_documents_roundtrip_through_xml() {
    let toolkit = Toolkit::new().unwrap();
    for entry in toolkit.registry().all() {
        let wsdl = toolkit
            .network()
            .fetch_wsdl(&entry.host, &entry.name)
            .unwrap();
        let xml = wsdl.to_xml();
        let parsed = dm_wsrf::wsdl::WsdlDocument::from_xml(&xml).unwrap();
        assert_eq!(parsed, wsdl, "{} WSDL does not round-trip", entry.name);
    }
}
