//! E2 — Figure 4: the C4.5/J48 decision tree over the breast-cancer
//! data must put `node-caps` at the root, render textually and as SVG,
//! and behave sensibly under option changes.

use dm_algorithms::classifiers::{Classifier, J48};
use dm_algorithms::options::Configurable;

#[test]
fn j48_root_is_node_caps() {
    let ds = dm_data::corpus::breast_cancer();
    let mut j48 = J48::new();
    j48.train(&ds).unwrap();
    assert_eq!(j48.root_attribute(), Some("node-caps"));
}

#[test]
fn j48_text_output_shape() {
    let ds = dm_data::corpus::breast_cancer();
    let mut j48 = J48::new();
    j48.train(&ds).unwrap();
    let text = j48.describe();
    assert!(text.contains("J48 pruned tree"));
    assert!(text.lines().any(|l| l.starts_with("node-caps = ")));
    assert!(text.contains("Number of Leaves"));
    assert!(text.contains("Size of the tree"));
}

#[test]
fn j48_served_graph_is_svg_with_root() {
    let toolkit = faehim::Toolkit::new().unwrap();
    let svg = toolkit
        .j48_client()
        .classify_graph(&dm_data::corpus::breast_cancer_arff(), "Class", "")
        .unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("node-caps"));
    assert!(svg.contains("recurrence-events"));
}

#[test]
fn unpruned_root_unchanged() {
    // Pruning must not be what produces the node-caps root.
    let ds = dm_data::corpus::breast_cancer();
    let mut j48 = J48::new();
    j48.set_option("-U", "true").unwrap();
    j48.train(&ds).unwrap();
    assert_eq!(j48.root_attribute(), Some("node-caps"));
}

#[test]
fn j48_beats_majority_prior_in_sample() {
    let ds = dm_data::corpus::breast_cancer();
    let mut j48 = J48::new();
    j48.train(&ds).unwrap();
    let ci = ds.class_index().unwrap();
    let correct = (0..ds.num_instances())
        .filter(|&r| j48.predict(&ds, r).unwrap() == ds.value(r, ci) as usize)
        .count();
    assert!(correct > 201, "in-sample correct = {correct}, prior = 201");
}
