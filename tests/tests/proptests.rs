//! Property-based tests over the core data structures and invariants:
//! format round-trips, codec round-trips, envelope round-trips,
//! summary/count invariants, and classifier distribution laws.

use dm_algorithms::state::{StateReader, StateWriter};
use dm_data::{arff, csv, Attribute, Dataset};
use dm_wsrf::soap::{SoapCall, SoapValue};
use proptest::prelude::*;

/// Strategy: a token safe to embed as an ARFF nominal label.
fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,11}".prop_map(|s| s)
}

/// Strategy: a small random mixed-type dataset.
fn dataset() -> impl Strategy<Value = Dataset> {
    (
        proptest::collection::vec(label(), 2..5), // nominal domain
        2usize..6,                                // numeric attrs? reuse as count
        1usize..30,                               // rows
        any::<u64>(),
    )
        .prop_map(|(labels, n_numeric, rows, seed)| {
            let mut labels = labels;
            labels.sort();
            labels.dedup();
            if labels.len() < 2 {
                labels = vec!["a".into(), "b".into()];
            }
            let mut attrs = vec![Attribute::nominal("cat", labels.clone())];
            for i in 0..n_numeric {
                attrs.push(Attribute::numeric(format!("x{i}")));
            }
            let mut ds = Dataset::new("prop", attrs);
            // Simple xorshift so the strategy stays pure.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..rows {
                let mut row = Vec::with_capacity(1 + n_numeric);
                let r = next();
                row.push(if r % 13 == 0 {
                    f64::NAN
                } else {
                    (r % labels.len() as u64) as f64
                });
                for _ in 0..n_numeric {
                    let v = next();
                    row.push(if v % 17 == 0 {
                        f64::NAN
                    } else {
                        (v % 10_000) as f64 / 8.0 - 600.0
                    });
                }
                ds.push_row(row).expect("arity");
            }
            ds
        })
}

fn datasets_equal(a: &Dataset, b: &Dataset) -> bool {
    if a.num_instances() != b.num_instances() || a.num_attributes() != b.num_attributes() {
        return false;
    }
    for r in 0..a.num_instances() {
        for c in 0..a.num_attributes() {
            let (x, y) = (a.value(r, c), b.value(r, c));
            if x.is_nan() != y.is_nan() {
                return false;
            }
            if !x.is_nan() && (x - y).abs() > 1e-9 {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arff_roundtrip_preserves_values(ds in dataset()) {
        let text = arff::write_arff(&ds);
        let back = arff::parse_arff(&text).unwrap();
        prop_assert!(datasets_equal(&ds, &back));
    }

    #[test]
    fn row_major_columnar_roundtrip_identity(ds in dataset()) {
        // Columnar engine invariant: snapshotting to the legacy
        // row-major layout and rebuilding is the identity, including
        // missing cells (validity bitmaps) and weights.
        let back = dm_data::convert::from_row_major(&dm_data::convert::to_row_major(&ds)).unwrap();
        prop_assert_eq!(&ds, &back);
        // And it composes with the textual ARFF round trip.
        let reparsed = arff::parse_arff(&arff::write_arff(&back)).unwrap();
        prop_assert!(datasets_equal(&ds, &reparsed));
    }

    #[test]
    fn csv_roundtrip_preserves_shape(ds in dataset()) {
        let text = csv::write_csv(&ds);
        let back = csv::parse_csv(&text).unwrap();
        prop_assert_eq!(back.num_instances(), ds.num_instances());
        prop_assert_eq!(back.num_attributes(), ds.num_attributes());
    }

    #[test]
    fn summary_counts_are_consistent(ds in dataset()) {
        let s = dm_data::summary::DatasetSummary::of(&ds);
        prop_assert_eq!(s.num_attributes, ds.num_attributes());
        let total_missing: usize = s.attributes.iter().map(|a| a.missing).sum();
        prop_assert_eq!(total_missing, s.missing_values);
        for a in &s.attributes {
            prop_assert!(a.distinct >= a.unique);
            prop_assert!(a.missing <= s.num_instances);
        }
    }

    #[test]
    fn split_partitions_rows(ds in dataset(), frac in 0.1f64..0.9, seed in any::<u64>()) {
        let (train, test) = dm_data::split::train_test_split(&ds, frac, seed).unwrap();
        prop_assert_eq!(train.num_instances() + test.num_instances(), ds.num_instances());
    }

    #[test]
    fn state_codec_roundtrips(
        ints in proptest::collection::vec(any::<u64>(), 0..20),
        floats in proptest::collection::vec(any::<f64>(), 0..20),
        text in ".{0,64}",
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut w = StateWriter::new();
        for &i in &ints { w.put_u64(i); }
        w.put_f64_slice(&floats);
        w.put_str(&text);
        w.put_bytes(&bytes);
        let buf = w.into_bytes();
        let mut r = StateReader::new(&buf);
        for &i in &ints {
            prop_assert_eq!(r.get_u64().unwrap(), i);
        }
        let fs = r.get_f64_vec().unwrap();
        prop_assert_eq!(fs.len(), floats.len());
        for (a, b) in fs.iter().zip(&floats) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
        prop_assert_eq!(r.get_str().unwrap(), text);
        prop_assert_eq!(r.get_bytes().unwrap(), bytes);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn soap_envelope_roundtrips(
        text in ".{0,48}",
        number in any::<i64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flag in any::<bool>(),
    ) {
        let call = SoapCall::new("Svc", "op")
            .arg("text", SoapValue::Text(text.clone()))
            .arg("number", SoapValue::Int(number))
            .arg("payload", SoapValue::Bytes(payload.clone()))
            .arg("flag", SoapValue::Bool(flag));
        let xml = call.to_envelope();
        let back = SoapCall::from_envelope(&xml).unwrap();
        prop_assert_eq!(back.get("text").unwrap().as_text().unwrap(), text.as_str());
        prop_assert_eq!(back.get("number").unwrap().as_int().unwrap(), number);
        prop_assert_eq!(back.get("payload").unwrap().as_bytes().unwrap(), payload.as_slice());
    }

    #[test]
    fn xml_escaping_total(s in ".{0,128}") {
        let escaped = dm_wsrf::xml::escape(&s);
        prop_assert_eq!(dm_wsrf::xml::unescape(&escaped), s);
    }

    #[test]
    fn classifier_distributions_are_probabilities(seed in any::<u64>(), noise in 0.0f64..0.4) {
        let ds = dm_data::corpus::nominal_classification(60, 4, 3, 2, noise, seed);
        for name in ["ZeroR", "NaiveBayes", "J48", "DecisionStump"] {
            let mut c = dm_algorithms::registry::make_classifier(name).unwrap();
            c.train(&ds).unwrap();
            for r in 0..ds.num_instances().min(10) {
                let d = c.distribution(&ds, r).unwrap();
                prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{} sums", name);
                prop_assert!(d.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)), "{} range", name);
            }
        }
    }

    #[test]
    fn fft_satisfies_parseval(signal in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        // Energy in time domain == energy in frequency domain / N.
        let spectrum = dm_algorithms::signal::fft(&signal).unwrap();
        let n = spectrum.len() as f64;
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spectrum.iter().map(|c| c.norm_sq()).sum::<f64>() / n;
        let scale = time_energy.abs().max(1.0);
        prop_assert!((time_energy - freq_energy).abs() / scale < 1e-9,
            "time {time_energy} vs freq {freq_energy}");
    }

    #[test]
    fn fft_ifft_identity(signal in proptest::collection::vec(-1e3f64..1e3, 1..128)) {
        let spectrum = dm_algorithms::signal::fft(&signal).unwrap();
        let back = dm_algorithms::signal::ifft(&spectrum).unwrap();
        for (orig, rec) in signal.iter().zip(&back) {
            prop_assert!((orig - rec.re).abs() < 1e-6);
            prop_assert!(rec.im.abs() < 1e-6);
        }
    }

    #[test]
    fn j48_pruning_never_grows_the_tree(seed in any::<u64>(), noise in 0.0f64..0.5) {
        use dm_algorithms::classifiers::{Classifier, J48};
        use dm_algorithms::options::Configurable;
        let ds = dm_data::corpus::nominal_classification(120, 5, 3, 2, noise, seed);
        let mut pruned = J48::new();
        pruned.train(&ds).unwrap();
        let mut unpruned = J48::new();
        unpruned.set_option("-U", "true").unwrap();
        unpruned.train(&ds).unwrap();
        prop_assert!(pruned.tree_size().unwrap() <= unpruned.tree_size().unwrap());
    }

    #[test]
    fn normalize_bounds_numeric_columns(ds in dataset()) {
        use dm_data::filters::{Filter, Normalize};
        let out = Normalize::fit(&ds).apply(&ds).unwrap();
        for a in 0..out.num_attributes() {
            if !out.attributes()[a].is_numeric() {
                continue;
            }
            for r in 0..out.num_instances() {
                let v = out.value(r, a);
                if !v.is_nan() {
                    prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "value {v}");
                }
            }
        }
    }

    #[test]
    fn replace_missing_leaves_no_gaps(ds in dataset()) {
        use dm_data::filters::{Filter, ReplaceMissing};
        let out = ReplaceMissing::fit(&ds).apply(&ds).unwrap();
        for a in 0..out.num_attributes() {
            // Columns that had at least one present value must be full.
            let had_value = (0..ds.num_instances()).any(|r| !ds.value(r, a).is_nan());
            if had_value {
                prop_assert!(!out.has_missing(a), "column {a} still has gaps");
            }
        }
    }

    #[test]
    fn incremental_nb_equals_batch(seed in any::<u64>(), split in 1usize..39) {
        use dm_algorithms::classifiers::{Classifier, NaiveBayes};
        let ds = dm_data::corpus::nominal_classification(40, 4, 3, 2, 0.3, seed);
        let mut batch = NaiveBayes::new();
        batch.train(&ds).unwrap();
        let first = ds.select_rows(&(0..split).collect::<Vec<_>>());
        let rest = ds.select_rows(&(split..40).collect::<Vec<_>>());
        let mut inc = NaiveBayes::new();
        inc.train(&first).unwrap();
        inc.partial_train(&rest).unwrap();
        for r in 0..ds.num_instances() {
            let a = batch.distribution(&ds, r).unwrap();
            let b = inc.distribution(&ds, r).unwrap();
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cross_validation_partitions(seed in any::<u64>(), k in 2usize..6) {
        let ds = dm_data::corpus::nominal_classification(50, 3, 2, 2, 0.2, seed);
        let cv = dm_data::split::CrossValidation::stratified(&ds, k, seed).unwrap();
        let mut seen = vec![false; ds.num_instances()];
        for fold in 0..cv.k() {
            for &row in cv.test_rows(fold) {
                prop_assert!(!seen[row]);
                seen[row] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
