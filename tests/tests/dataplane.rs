//! E12 — the content-addressed data plane end to end: pass-by-reference
//! payloads, the trained-model cache, and memoised enactment together
//! make a warm re-enactment of the §5 case study move a fraction of the
//! wire bytes and simulated network time of a cold run, with
//! byte-identical outputs.

use dm_workflow::engine::Executor;
use dm_workflow::memo::MemoCache;
use faehim::casestudy::{run_case_study_on, run_case_study_with};
use faehim::Toolkit;
use std::sync::Arc;

/// The pinned E12 acceptance ratios: a warm re-enactment must move at
/// least 5× fewer wire bytes and take at least 3× less simulated
/// network time than the cold run, and produce byte-identical outputs.
#[test]
fn warm_case_study_meets_pinned_ratios() {
    let toolkit = Toolkit::new().unwrap();
    toolkit.enable_data_plane();
    let net = toolkit.network();
    let executor = Executor::serial().with_memoisation(Arc::new(MemoCache::new(64)));

    net.reset_wire_stats();
    let cold_start = net.now();
    let cold = run_case_study_with(&toolkit, &executor).unwrap();
    let cold_time = net.now() - cold_start;
    let cold_wire = net.wire_stats();

    net.reset_wire_stats();
    let warm_start = net.now();
    let warm = run_case_study_with(&toolkit, &executor).unwrap();
    let warm_time = net.now() - warm_start;
    let warm_wire = net.wire_stats();

    // Byte-identical artifacts.
    assert_eq!(cold.model_text, warm.model_text);
    assert_eq!(cold.analysis, warm.analysis);
    assert_eq!(cold.tree_svg, warm.tree_svg);
    assert_eq!(cold.summary_table, warm.summary_table);

    // ≥5× fewer wire bytes.
    assert!(
        cold_wire.bytes >= 5 * warm_wire.bytes.max(1),
        "wire bytes: cold {} vs warm {} (ratio {:.1})",
        cold_wire.bytes,
        warm_wire.bytes,
        cold_wire.bytes as f64 / warm_wire.bytes.max(1) as f64,
    );
    // ≥3× less simulated network time.
    assert!(
        cold_time >= 3 * warm_time,
        "virtual time: cold {cold_time:?} vs warm {warm_time:?}",
    );
    // The warm run was served by the caches: every workflow task but
    // the stateful viewer came from the memo cache.
    assert_eq!(warm.report.memo_hits(), warm.report.runs.len() - 1);
}

/// The data plane is invisible to results: with it enabled the case
/// study produces exactly the artifacts of a plain enactment, and the
/// monitor surfaces the reference traffic.
#[test]
fn data_plane_is_transparent_to_case_study_outputs() {
    let plain = Toolkit::new().unwrap();
    let referenced = Toolkit::new().unwrap();
    referenced.enable_data_plane();

    let a = run_case_study_on(&plain).unwrap();
    // Two runs so the second benefits from warm host/client stores even
    // without memoisation.
    let _ = run_case_study_on(&referenced).unwrap();
    let b = run_case_study_on(&referenced).unwrap();

    assert_eq!(a.model_text, b.model_text);
    assert_eq!(a.analysis, b.analysis);
    assert_eq!(a.tree_svg, b.tree_svg);
    assert_eq!(a.summary_table, b.summary_table);

    let wire = referenced.wire_stats();
    assert!(wire.ref_substitutions > 0, "no payload travelled by handle");
    assert!(wire.bytes_saved > 0);
    // The savings surface through the monitor log too.
    let summary = referenced.network().monitor().summary(None);
    assert!(summary.ref_hits > 0);
    assert!(summary.bytes_saved > 0);
    // Plain toolkit never substitutes.
    assert_eq!(plain.wire_stats().ref_substitutions, 0);
}

/// Attachment-store counters stay coherent under real traffic.
#[test]
fn store_counters_obey_invariants_under_case_study_traffic() {
    let toolkit = Toolkit::new().unwrap();
    toolkit.enable_data_plane();
    for _ in 0..3 {
        run_case_study_on(&toolkit).unwrap();
    }
    let host_stats = toolkit
        .container(toolkit.primary_host())
        .unwrap()
        .attachments()
        .stats();
    assert_eq!(
        host_stats.hits + host_stats.misses,
        host_stats.lookups,
        "host store: {host_stats:?}"
    );
    let client_stats = toolkit.network().client_store().unwrap().stats();
    assert_eq!(
        client_stats.hits + client_stats.misses,
        client_stats.lookups,
        "client store: {client_stats:?}"
    );
    assert!(host_stats.lookups > 0 || client_stats.lookups > 0);
}

mod random_workflows {
    use super::*;
    use dm_workflow::graph::{TaskGraph, Token};
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::OnceLock;

    const PIPELINE_OPS: [&str; 3] = [
        "Preprocess.normalize",
        "Preprocess.standardize",
        "Preprocess.replaceMissing",
    ];

    fn plain() -> &'static Toolkit {
        static TK: OnceLock<Toolkit> = OnceLock::new();
        TK.get_or_init(|| Toolkit::new().unwrap())
    }

    fn referenced() -> &'static Toolkit {
        static TK: OnceLock<Toolkit> = OnceLock::new();
        TK.get_or_init(|| {
            let tk = Toolkit::new().unwrap();
            tk.enable_data_plane();
            tk
        })
    }

    /// CSV→ARFF conversion followed by a random preprocessing pipeline,
    /// enacted through imported Web Service tools.
    fn enact(toolkit: &Toolkit, csv: &str, ops: &[usize]) -> String {
        let toolbox = toolkit.toolbox();
        let mut g = TaskGraph::new();
        let convert = g.add_task(toolbox.find("DataConversion.csvToArff").unwrap());
        let mut tail = (convert, 0);
        for &op in ops {
            let task = g.add_task(toolbox.find(PIPELINE_OPS[op]).unwrap());
            g.connect(tail.0, tail.1, task, 0).unwrap();
            tail = (task, 0);
        }
        let mut bindings = HashMap::new();
        bindings.insert((convert, 0), Token::Text(csv.to_string()));
        let report = Executor::serial().run(&g, &bindings).unwrap();
        report
            .output(tail.0, tail.1)
            .and_then(|t| t.as_text().ok())
            .expect("pipeline output")
            .to_string()
    }

    fn csv_strategy() -> impl Strategy<Value = String> {
        // 3 numeric columns, enough rows that larger cases cross the
        // 1 KiB pass-by-reference threshold.
        (proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 5..120)).prop_map(|rows| {
            let mut csv = String::from("alpha,beta,gamma\n");
            for (a, b, c) in rows {
                csv.push_str(&format!("{a},{b},{c}\n"));
            }
            csv
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Data-plane enactment is byte-identical to the plain path for
        /// random datasets and random preprocessing pipelines, on both
        /// cold and warm runs, and the cache counters stay coherent.
        #[test]
        fn data_plane_enactment_is_byte_identical(
            csv in csv_strategy(),
            ops in proptest::collection::vec(0usize..PIPELINE_OPS.len(), 0..4),
        ) {
            let baseline = enact(plain(), &csv, &ops);
            let cold = enact(referenced(), &csv, &ops);
            let warm = enact(referenced(), &csv, &ops);
            prop_assert_eq!(&baseline, &cold);
            prop_assert_eq!(&baseline, &warm);

            let host = referenced()
                .container(referenced().primary_host())
                .unwrap()
                .attachments()
                .stats();
            prop_assert_eq!(host.hits + host.misses, host.lookups);
            let client = referenced().network().client_store().unwrap().stats();
            prop_assert_eq!(client.hits + client.misses, client.lookups);
        }
    }
}
