//! E13 — the observability layer end to end: enacting the §5 case
//! study with tracing on yields one causally-linked span tree per
//! workflow (workflow → task → SOAP call → transport leg → dispatch →
//! handler), and the metrics registry exports per-service invocation
//! latency quantiles in both Prometheus and JSON form.

use dm_wsrf::trace::{Span, SpanKind, SpanStatus};
use faehim::casestudy::run_case_study_with;
use faehim::Toolkit;

fn find_child<'a>(spans: &'a [Span], parent: &Span, kind: SpanKind) -> &'a Span {
    spans
        .iter()
        .find(|s| s.parent_span_id == Some(parent.span_id) && s.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} child under {:?}", parent.name))
}

#[test]
fn case_study_produces_a_causally_linked_span_tree() {
    let toolkit = Toolkit::new().unwrap();
    let tracer = toolkit.enable_tracing();
    let executor = toolkit.resilient_executor(None);
    run_case_study_with(&toolkit, &executor).unwrap();

    let spans = tracer.finished_spans();
    let root = spans
        .iter()
        .find(|s| s.kind == SpanKind::Workflow)
        .expect("workflow root span");
    assert_eq!(root.parent_span_id, None);
    assert_eq!(root.attribute("tasks"), Some("10"));
    // Every task span belongs to the root's trace. (Spans from direct
    // client calls outside the enactment — the Figure-3 summary fetch —
    // form their own traces.)
    assert!(spans
        .iter()
        .filter(|s| s.kind == SpanKind::Task)
        .all(|s| s.trace_id == root.trace_id));

    // Walk one full causal chain down from the root: the
    // `Classifier.getClassifiers` task invokes over the wire, so its
    // task span must chain task → soap-call → transport-leg, and the
    // request leg's context crosses the wire to parent the container's
    // dispatch span, which in turn parents the service handler span.
    let task = spans
        .iter()
        .find(|s| s.kind == SpanKind::Task && s.name == "Classifier.getClassifiers")
        .expect("task span");
    assert_eq!(task.parent_span_id, Some(root.span_id));
    assert_eq!(task.attribute("attempt"), Some("1"));
    let call = find_child(&spans, task, SpanKind::SoapCall);
    let request_leg = find_child(&spans, call, SpanKind::TransportLeg);
    let dispatch = find_child(&spans, request_leg, SpanKind::Dispatch);
    let handler = find_child(&spans, dispatch, SpanKind::Handler);
    assert_eq!(handler.name, "Classifier.getClassifiers");
    for span in [call, request_leg, dispatch, handler] {
        assert_eq!(span.status, SpanStatus::Ok, "{:?}", span.name);
    }
    // Intervals nest on the virtual clock: each link starts no earlier
    // than its parent.
    assert!(task.start >= root.start);
    assert!(call.start >= task.start);
    assert!(request_leg.start >= call.start);
    assert!(dispatch.start >= request_leg.start);

    // The rendered tree shows the whole chain indented in order.
    let text = dm_viz::spantree::render_span_tree(&spans);
    let positions: Vec<usize> = [
        "workflow [workflow]",
        "[task]",
        "[soap-call]",
        "[transport-leg]",
        "[dispatch]",
        "[handler]",
    ]
    .iter()
    .map(|needle| {
        text.find(needle)
            .unwrap_or_else(|| panic!("{needle} missing:\n{text}"))
    })
    .collect();
    assert!(positions.windows(2).all(|w| w[0] < w[1]), "{text}");
}

#[test]
fn exporters_carry_per_service_latency_quantiles() {
    let toolkit = Toolkit::new().unwrap();
    let classifier = toolkit.classifier_client();
    for _ in 0..3 {
        classifier.get_classifiers().unwrap();
    }
    let metrics = toolkit.metrics_registry();

    let labels = [("service", "Classifier")];
    assert!(
        metrics.counter_value(
            "faehim_invocations_total",
            &[
                ("service", "Classifier"),
                ("host", toolkit.primary_host()),
                ("outcome", "ok")
            ]
        ) >= 3
    );
    for q in [0.5, 0.95, 0.99] {
        let value = metrics
            .histogram_quantile("faehim_invocation_duration_seconds", &labels, q)
            .expect("latency quantile");
        assert!(value > 0.0);
    }

    let prom = metrics.export_prometheus();
    assert!(
        prom.contains("# TYPE faehim_invocation_duration_seconds histogram"),
        "{prom}"
    );
    assert!(
        prom.contains(
            "faehim_invocation_duration_seconds_bucket{service=\"Classifier\",le=\"+Inf\"}"
        ),
        "{prom}"
    );
    for q in ["0.5", "0.95", "0.99"] {
        assert!(
            prom.contains(&format!("{{service=\"Classifier\",quantile=\"{q}\"}}")),
            "missing quantile {q}:\n{prom}"
        );
    }
    assert!(prom.contains("faehim_wire_envelopes_total"), "{prom}");
    // The model/eval caches surface via the getCacheStats round-trip.
    assert!(prom.contains("cache=\"model\""), "{prom}");

    let json = metrics.export_json();
    assert!(
        json.contains("\"faehim_invocation_duration_seconds\""),
        "{json}"
    );
    for key in ["\"p50\"", "\"p95\"", "\"p99\""] {
        assert!(json.contains(key), "missing {key}:\n{json}");
    }
}

#[test]
fn tracing_disables_cleanly_and_keeps_envelopes_header_free() {
    let toolkit = Toolkit::new().unwrap();
    let net = toolkit.network();
    net.reset_wire_stats();
    toolkit.classifier_client().get_classifiers().unwrap();
    let plain_bytes = net.wire_stats().bytes;

    let tracer = toolkit.enable_tracing();
    net.reset_wire_stats();
    toolkit.classifier_client().get_classifiers().unwrap();
    let traced_bytes = net.wire_stats().bytes;
    // Only the request envelope carries the 109-byte traceparent
    // header (context propagates caller → callee, as in W3C tracing).
    assert_eq!(traced_bytes - plain_bytes, 109);
    assert!(!tracer.finished_spans().is_empty());

    net.disable_tracing();
    tracer.clear();
    net.reset_wire_stats();
    toolkit.classifier_client().get_classifiers().unwrap();
    assert_eq!(net.wire_stats().bytes, plain_bytes);
    assert!(tracer.finished_spans().is_empty());
}

#[test]
fn failed_dispatch_marks_the_span_chain() {
    let toolkit = Toolkit::new().unwrap();
    let tracer = toolkit.enable_tracing();
    let err = toolkit
        .classifier_client()
        .classify_instance("not arff", "NoSuchAlgorithm", "", "Class")
        .unwrap_err();
    assert!(err.to_string().contains("fault"), "{err}");
    let spans = tracer.finished_spans();
    // The SOAP-call, dispatch, and handler spans all record the fault.
    for kind in [SpanKind::SoapCall, SpanKind::Dispatch, SpanKind::Handler] {
        let span = spans
            .iter()
            .find(|s| s.kind == kind)
            .unwrap_or_else(|| panic!("no {kind:?} span"));
        assert!(
            matches!(&span.status, SpanStatus::Error(m) if !m.is_empty()),
            "{kind:?} span not errored"
        );
    }
}
