//! E16 — event-sourced durable enactment: crash the orchestrator at
//! every journal-append boundary of the §5 case-study workflow and
//! prove a fresh process resumes from the surviving log bytes to a
//! byte-identical report, with zero re-execution of completed tasks.

use dm_workflow::durable::DurableConfig;
use dm_workflow::error::WorkflowError;
use dm_workflow::journal::{RunEvent, RunJournal};
use dm_workflow::memo::MemoCache;
use faehim::casestudy::build_case_study;
use faehim::Toolkit;
use std::sync::Arc;

const INLINE_LIMIT: usize = 1024;

/// The boundary-exhaustive property: for every append count `k` in the
/// uninterrupted run's journal, killing the orchestrator right after
/// its `k`-th append and resuming from the surviving bytes in a fresh
/// journal (the process boundary) yields canonical report bytes
/// identical to the uninterrupted run — at worker-pool widths 1 and 4.
#[test]
fn crash_at_every_append_boundary_resumes_byte_identical() {
    let mut tk = Toolkit::new().unwrap();
    tk.enable_data_plane();
    let journal = tk.enable_durable_enactment(4);
    let store = tk.network().client_store().expect("data plane store");
    let (graph, _tasks, bindings) = build_case_study(&tk).unwrap();

    let baseline = tk.run_durable(&graph, &bindings).unwrap();
    let expected = baseline.canonical_bytes();
    assert_eq!(baseline.runs.len(), 10);
    assert_eq!(baseline.replay_hits(), 0);
    // 1 run-started + 10 task-started + 10 task-completed +
    // 1 run-finished: the full append schedule, every one a kill point.
    let total_appends = journal.stats().appends;
    assert_eq!(total_appends, 22, "unexpected append schedule");

    for workers in [1usize, 4] {
        for kill_at in 1..=total_appends {
            let crash_journal = Arc::new(RunJournal::with_store(Arc::clone(&store), INLINE_LIMIT));
            let config = DurableConfig::new(Arc::clone(&crash_journal))
                .with_workers(workers)
                .with_kill_after_appends(kill_at);
            let err = tk
                .resilient_executor(None)
                .run_durable(&graph, &bindings, &config)
                .unwrap_err();
            assert!(
                matches!(err, WorkflowError::Crashed { appended } if appended == kill_at),
                "workers={workers} kill={kill_at}: {err}"
            );

            // Process boundary: only the journal bytes and the
            // content-addressed store survive the crash.
            let survived = Arc::new(
                RunJournal::from_bytes(&crash_journal.bytes())
                    .attach_store(Arc::clone(&store), INLINE_LIMIT),
            );
            let completed_at_crash = survived.replay().completed.len();
            let resume_config = DurableConfig::new(Arc::clone(&survived)).with_workers(workers);
            let resumed = tk
                .resilient_executor(None)
                .run_durable(&graph, &bindings, &resume_config)
                .unwrap();

            assert_eq!(
                resumed.canonical_bytes(),
                expected,
                "workers={workers} kill={kill_at}: resumed report differs"
            );
            // Completed tasks were restored from the log, not re-run.
            assert_eq!(resumed.replay_hits(), completed_at_crash);
            assert_eq!(survived.stats().replay_hits, completed_at_crash as u64);
            assert_eq!(
                resumed.runs.iter().filter(|r| !r.replayed).count(),
                10 - completed_at_crash,
                "workers={workers} kill={kill_at}: re-execution count wrong"
            );
            assert!(survived.replay().finished);
        }
    }
}

/// Memo entries built by a dead process are re-seeded from the journal
/// on resume: replayed pure tasks land in the fresh process's cache
/// without executing, and replay hits are counted exactly once.
#[test]
fn memo_hits_survive_crash_recovery() {
    let mut tk = Toolkit::new().unwrap();
    tk.enable_data_plane();
    tk.enable_durable_enactment(4);
    let store = tk.network().client_store().expect("data plane store");
    let (graph, _tasks, bindings) = build_case_study(&tk).unwrap();

    // Uninterrupted memoised baseline: warms a cold cache.
    let warm_memo = Arc::new(MemoCache::default());
    let baseline_journal = Arc::new(RunJournal::with_store(Arc::clone(&store), INLINE_LIMIT));
    let baseline = tk
        .resilient_executor(None)
        .with_memoisation(Arc::clone(&warm_memo))
        .run_durable(&graph, &bindings, &DurableConfig::new(baseline_journal))
        .unwrap();
    let warm_entries = warm_memo.len();
    assert!(warm_entries > 0, "case study has no pure tasks to memoise");

    // Crash a second cold process mid-run (after the 12th append the
    // run is part-way through its completions).
    let crash_journal = Arc::new(RunJournal::with_store(Arc::clone(&store), INLINE_LIMIT));
    let err = tk
        .resilient_executor(None)
        .with_memoisation(Arc::new(MemoCache::default()))
        .run_durable(
            &graph,
            &bindings,
            &DurableConfig::new(Arc::clone(&crash_journal)).with_kill_after_appends(12),
        )
        .unwrap_err();
    assert!(matches!(err, WorkflowError::Crashed { .. }));

    // Fresh process, fresh (empty) memo cache: resume from the bytes.
    let survived = Arc::new(
        RunJournal::from_bytes(&crash_journal.bytes())
            .attach_store(Arc::clone(&store), INLINE_LIMIT),
    );
    let replayed_count = survived.replay().completed.len();
    assert!(
        replayed_count > 0,
        "kill point landed before any completion"
    );
    let recovered_memo = Arc::new(MemoCache::default());
    let resumed = tk
        .resilient_executor(None)
        .with_memoisation(Arc::clone(&recovered_memo))
        .run_durable(
            &graph,
            &bindings,
            &DurableConfig::new(Arc::clone(&survived)),
        )
        .unwrap();

    assert_eq!(resumed.canonical_bytes(), baseline.canonical_bytes());
    assert_eq!(resumed.runs.len(), 10);
    // Replay hits counted exactly once — journal counter and report
    // agree, and replayed tasks never re-executed.
    assert_eq!(resumed.replay_hits(), replayed_count);
    assert_eq!(survived.stats().replay_hits, replayed_count as u64);
    // The dead process's pure completions were re-seeded into the
    // fresh cache from the journal (not by running the tools), so a
    // warm re-enactment after recovery hits memo like the baseline.
    assert!(
        !recovered_memo.is_empty(),
        "replayed pure tasks were not re-seeded into the memo cache"
    );
    let warm = tk
        .resilient_executor(None)
        .with_memoisation(Arc::clone(&recovered_memo))
        .run(&graph, &bindings)
        .unwrap();
    assert_eq!(warm.memo_hits(), warm_entries);
    assert_eq!(warm.canonical_bytes(), baseline.canonical_bytes());
}

/// A corrupted journal tail is dropped, never trusted: flipping a byte
/// in the last record (and truncating mid-record) loses only the tail
/// events, and a resume re-executes exactly the lost work.
#[test]
fn corrupt_and_torn_tails_recover_gracefully() {
    let mut tk = Toolkit::new().unwrap();
    tk.enable_data_plane();
    let journal = tk.enable_durable_enactment(4);
    let store = tk.network().client_store().expect("data plane store");
    let (graph, _tasks, bindings) = build_case_study(&tk).unwrap();
    let baseline = tk.run_durable(&graph, &bindings).unwrap();
    let expected = baseline.canonical_bytes();
    let bytes = journal.bytes();
    let events = journal.events().len();

    // Torn tail: a partial final record (simulating a crash mid-write).
    let torn = &bytes[..bytes.len() - 7];
    let recovered =
        Arc::new(RunJournal::from_bytes(torn).attach_store(Arc::clone(&store), INLINE_LIMIT));
    assert_eq!(recovered.events().len(), events - 1);
    assert!(recovered.stats().torn_bytes > 0);

    // Corrupt tail: flip one byte inside the final record's payload.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 3;
    corrupt[last] ^= 0x5a;
    let recovered =
        Arc::new(RunJournal::from_bytes(&corrupt).attach_store(Arc::clone(&store), INLINE_LIMIT));
    assert_eq!(recovered.events().len(), events - 1);
    // The dropped record was run-finished, so the resumed enactment
    // re-finishes the run and converges on the same bytes.
    assert!(!recovered.replay().finished);
    tk.adopt_journal(Arc::clone(&recovered));
    let resumed = tk.run_durable(&graph, &bindings).unwrap();
    assert_eq!(resumed.canonical_bytes(), expected);
    assert_eq!(resumed.replay_hits(), 10);
    assert!(recovered.replay().finished);
    assert!(recovered
        .events()
        .iter()
        .any(|e| matches!(e, RunEvent::RunFinished { .. })));
}
