//! Offline stand-in for `parking_lot`: the `Mutex` / `RwLock` API this
//! workspace uses, backed by `std::sync` primitives. Poisoning is
//! absorbed (`parking_lot` has no poisoning), so a panic while holding
//! a guard does not wedge later lockers.

#![forbid(unsafe_code)]

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poison_is_absorbed() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock still usable after a panicked holder");
    }
}
