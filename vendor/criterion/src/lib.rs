//! Offline stand-in for `criterion`.
//!
//! Provides the same bench-authoring surface the workspace uses —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! `criterion_group!`, `criterion_main!` — backed by a plain
//! wall-clock sampling loop: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints mean / min / max per
//! iteration. No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each bench target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a standalone benchmark (outside any group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named identifier `function_name/parameter` for parameterised runs.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.samples(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.samples(), |b| f(b, input));
        self
    }

    /// End the group. (The real crate emits summary artefacts here.)
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    /// Duration of the sample most recently collected via [`iter`].
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine`, running it enough times per sample to get a
    /// stable per-iteration figure.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: find an iteration count that makes one
    // sample take roughly a few milliseconds.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 1,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    bencher.iterations = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut per_iter_nanos = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut bencher);
        per_iter_nanos.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let mean = per_iter_nanos.iter().sum::<f64>() / per_iter_nanos.len() as f64;
    println!(
        "bench {label:<48} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        fmt_nanos(mean),
        fmt_nanos(per_iter_nanos[0]),
        fmt_nanos(*per_iter_nanos.last().unwrap()),
        samples,
        bencher.iterations,
    );
}

fn fmt_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} us", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Declare a benchmark group: either the struct-ish form with
/// `name/config/targets` or the positional `(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("find", 128).to_string(), "find/128");
    }
}
