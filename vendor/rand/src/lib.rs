//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no network access, so the workspace vendors
//! the small slice of `rand` it actually uses: a deterministic seedable
//! generator ([`rngs::StdRng`], xoshiro256++ seeded via SplitMix64),
//! the [`Rng`] extension methods `random_bool` / `random_range`, and
//! [`seq::SliceRandom::shuffle`]. Distribution quality matches the
//! real crate for every consumer in this repository (bootstrap
//! sampling, weight init, fault injection, shuffling); sequences are
//! deterministic per seed but *not* bit-identical to upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` from 53 random mantissa bits.
fn f64_from_bits(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64_from_bits(self.next_u64()) < p
    }

    /// Uniform draw from a range (`0..n`, `-0.5..0.5`, `0..=k`, ...).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw; bias is < 2^-64 per call,
                // far below anything these consumers can observe.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++ with
    /// SplitMix64 state expansion (the construction `rand` itself uses
    /// for `seed_from_u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(7).random_range(0..u64::MAX) != c.random_range(0..u64::MAX)
        });
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let k = rng.random_range(0..=4u32);
            assert!(k <= 4);
        }
    }

    #[test]
    fn bool_rate_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
