//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain sampling strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy sampling the full domain of `T`.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// A strategy covering all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly "ordinary" magnitudes, sometimes extreme bit patterns
        // (subnormals, infinities, NaN) so codecs see the full domain.
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            2 => -0.0,
            _ => {
                let magnitude = (rng.unit_f64() * 40.0) - 20.0; // 1e-20 ..= 1e20
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                sign * rng.unit_f64() * 10f64.powf(magnitude)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII most of the time; valid arbitrary scalar otherwise.
        if rng.below(4) > 0 {
            char::from(0x20 + rng.below(0x5f) as u8)
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        }
    }
}
