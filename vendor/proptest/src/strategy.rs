//! The [`Strategy`] trait and the built-in strategies this workspace
//! uses: numeric ranges, tuples, `prop_map`, and `&str` interpreted as
//! a small regex subset.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for sampling values of one type. Unlike real proptest there
/// is no value tree or shrinking — `generate` draws a single value.
pub trait Strategy {
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map: f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty float range strategy");
                    let unit = rng.unit_f64() as $ty;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `&str` strategies are regex patterns over a small subset: literal
/// characters, `.` (printable ASCII plus a few multibyte chars),
/// character classes like `[a-z0-9_]`, and the quantifiers `{n}`,
/// `{m,n}`, `?`, `*`, `+` (the open-ended ones capped at 8 repeats).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.repeat.sample(rng);
            for _ in 0..count {
                out.push(atom.chars.sample(rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

/// Characters `.` can produce: printable ASCII plus a few multibyte
/// code points so XML-escaping and UTF-8 handling get exercised.
const ANY_EXTRA: &[char] = &['é', 'λ', '中', '—', 'ß'];

enum CharSet {
    /// A single literal character.
    Literal(char),
    /// Explicit alternatives (expanded from `[...]`).
    OneOf(Vec<char>),
    /// The `.` wildcard.
    Any,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Literal(c) => *c,
            CharSet::OneOf(chars) => chars[rng.below(chars.len() as u64) as usize],
            CharSet::Any => {
                let printable = 0x7f - 0x20; // ' ' ..= '~'
                let idx = rng.below(printable + ANY_EXTRA.len() as u64);
                if idx < printable {
                    char::from(0x20 + idx as u8)
                } else {
                    ANY_EXTRA[(idx - printable) as usize]
                }
            }
        }
    }
}

struct Repeat {
    min: u64,
    max: u64,
}

impl Repeat {
    fn sample(&self, rng: &mut TestRng) -> u64 {
        self.min + rng.below(self.max - self.min + 1)
    }
}

struct Atom {
    chars: CharSet,
    repeat: Repeat,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => CharSet::Any,
            '[' => {
                let mut members = Vec::new();
                loop {
                    let m = chars.next().expect("unterminated character class");
                    if m == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        // `m-hi` range unless the '-' is last (literal).
                        chars.next();
                        match chars.peek() {
                            Some(&']') | None => {
                                members.push(m);
                                members.push('-');
                            }
                            Some(_) => {
                                let hi = chars.next().unwrap();
                                for code in (m as u32)..=(hi as u32) {
                                    if let Some(ch) = char::from_u32(code) {
                                        members.push(ch);
                                    }
                                }
                            }
                        }
                    } else {
                        members.push(m);
                    }
                }
                assert!(!members.is_empty(), "empty character class in {pattern:?}");
                CharSet::OneOf(members)
            }
            '\\' => CharSet::Literal(chars.next().expect("dangling escape")),
            other => CharSet::Literal(other),
        };
        let repeat = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => Repeat {
                        min: lo.trim().parse().expect("bad {m,n} lower bound"),
                        max: hi.trim().parse().expect("bad {m,n} upper bound"),
                    },
                    None => {
                        let n = spec.trim().parse().expect("bad {n} count");
                        Repeat { min: n, max: n }
                    }
                }
            }
            Some('?') => {
                chars.next();
                Repeat { min: 0, max: 1 }
            }
            Some('*') => {
                chars.next();
                Repeat { min: 0, max: 8 }
            }
            Some('+') => {
                chars.next();
                Repeat { min: 1, max: 8 }
            }
            _ => Repeat { min: 1, max: 1 },
        };
        atoms.push(Atom { chars: set, repeat });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn char_class_ranges_expand() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c0-2_]".generate(&mut r);
            let c = s.chars().next().unwrap();
            assert!("abc012_".contains(c), "{c:?}");
        }
    }

    #[test]
    fn bounded_repeats_respect_bounds() {
        let mut r = rng();
        let mut seen_min = false;
        let mut seen_more = false;
        for _ in 0..200 {
            let s = "x{2,5}".generate(&mut r);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            seen_min |= s.len() == 2;
            seen_more |= s.len() > 2;
        }
        assert!(seen_min && seen_more);
    }

    #[test]
    fn dot_yields_printable_or_known_extras() {
        let mut r = rng();
        for _ in 0..300 {
            let s = ".{0,64}".generate(&mut r);
            assert!(s.chars().count() <= 64);
            for c in s.chars() {
                assert!((' '..='~').contains(&c) || ANY_EXTRA.contains(&c), "{c:?}");
            }
        }
    }

    #[test]
    fn int_ranges_cover_span() {
        let mut r = rng();
        let mut seen = [false; 7];
        for _ in 0..400 {
            let v = (3usize..10).generate(&mut r);
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&v));
        }
    }
}
