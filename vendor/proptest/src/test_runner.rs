//! Per-test configuration and the deterministic RNG behind sampling.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of proptest's runner configuration: how many cases to sample.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG used for strategy sampling. Seeded from the test
/// name so every test gets a distinct but reproducible stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test; the same name always yields the same
    /// stream (FNV-1a over the name picks the seed).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)` via 128-bit multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
