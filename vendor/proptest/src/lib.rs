//! Offline stand-in for `proptest`.
//!
//! Implements the surface this workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range
//! and tuple strategies, [`arbitrary::any`], [`collection::vec`], and
//! a small regex-subset string strategy — with deterministic sampling
//! seeded per test. Failing cases panic with the generated inputs in
//! the message; there is **no shrinking** (the real crate minimises
//! counterexamples, this one just reports them).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `config.cases` sampled
/// argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($items)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __case_desc = || {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}; ", $arg));
                        )*
                        s
                    };
                    let _ = &__case_desc;
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property test; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any(x in 3usize..10, f in -1.0f64..1.0, s in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = s;
        }

        #[test]
        fn vectors_and_maps(v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn regex_subset(s in "[a-z][a-z0-9_]{0,11}") {
            prop_assert!(!s.is_empty() && s.len() <= 12, "{s:?}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn tuples_compose(pair in (1usize..4, any::<bool>()).prop_map(|(n, b)| (n * 2, b))) {
            prop_assert!(pair.0 % 2 == 0 && pair.0 < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = "[a-f]{8}";
        use crate::strategy::Strategy;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
