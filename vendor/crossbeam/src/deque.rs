//! Offline stand-in for `crossbeam-deque`: the work-stealing deque API
//! subset the compute pool uses — a per-worker [`Worker`] queue with
//! [`Stealer`] handles for other threads, and a global [`Injector`] for
//! externally submitted tasks.
//!
//! The real crate implements the Chase–Lev lock-free algorithm; this
//! stand-in keeps the exact same API and semantics (FIFO/LIFO worker
//! ends, stealers always take from the opposite end to the owner,
//! batched steals move half the victim's queue) on a `Mutex<VecDeque>`.
//! The workspace forbids `unsafe`, so lock-freedom is out of scope; the
//! pool's scalability on the simulated single-box deployments is bound
//! by task granularity, not deque contention.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty at the time of the attempt.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// `true` for [`Steal::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// `true` for [`Steal::Retry`].
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// Which end the owning worker pops from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// Owner pushes back, pops front (queue order).
    Fifo,
    /// Owner pushes back, pops back (stack order).
    Lifo,
}

/// The owner side of a work-stealing deque. Not `Clone`: exactly one
/// thread owns the worker end; everyone else goes through [`Stealer`]s.
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A FIFO worker: `pop` takes the oldest task (queue order).
    pub fn new_fifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Fifo,
        }
    }

    /// A LIFO worker: `pop` takes the most recently pushed task.
    pub fn new_lifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Lifo,
        }
    }

    /// A [`Stealer`] handle other threads can take tasks through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Push a task onto the owner end.
    pub fn push(&self, task: T) {
        self.inner.lock().expect("deque poisoned").push_back(task);
    }

    /// Pop a task from the owner end.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().expect("deque poisoned");
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// `true` if the deque currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("deque poisoned").is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }
}

/// A handle for stealing tasks from another thread's [`Worker`].
/// Stealers take from the front (the end FIFO owners also pop from,
/// and the opposite end to LIFO owners — matching crossbeam, where
/// steals always see the oldest task first).
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task.
    pub fn steal(&self) -> Steal<T> {
        let mut q = self.inner.lock().expect("deque poisoned");
        match q.pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal roughly half the victim's tasks into `dest`, returning one
    /// of them (crossbeam's `steal_batch_and_pop`).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.inner.lock().expect("deque poisoned");
        let n = q.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = n.div_ceil(2);
        let mut batch: Vec<T> = Vec::with_capacity(take);
        for _ in 0..take {
            match q.pop_front() {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        drop(q);
        let mut it = batch.into_iter();
        let first = it.next().expect("take >= 1");
        let mut dest_q = dest.inner.lock().expect("deque poisoned");
        for t in it {
            dest_q.push_back(t);
        }
        Steal::Success(first)
    }

    /// `true` if the victim's deque currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("deque poisoned").is_empty()
    }

    /// Number of tasks currently in the victim's deque.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }
}

/// A global FIFO queue for tasks injected from outside the pool.
#[derive(Debug, Default)]
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Steal the oldest task.
    pub fn steal(&self) -> Steal<T> {
        let mut q = self.inner.lock().expect("injector poisoned");
        match q.pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch of tasks into `dest` and return one of them.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.inner.lock().expect("injector poisoned");
        let n = q.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = n.div_ceil(2);
        let mut batch: Vec<T> = Vec::with_capacity(take);
        for _ in 0..take {
            match q.pop_front() {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        drop(q);
        let mut it = batch.into_iter();
        let first = it.next().expect("take >= 1");
        let mut dest_q = dest.inner.lock().expect("deque poisoned");
        for t in it {
            dest_q.push_back(t);
        }
        Steal::Success(first)
    }

    /// `true` if the queue currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("injector poisoned").is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("injector poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_worker_pops_in_push_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn lifo_worker_pops_newest_first() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn batch_steal_moves_half() {
        let victim = Worker::new_fifo();
        for i in 0..8 {
            victim.push(i);
        }
        let thief = Worker::new_fifo();
        let got = victim.stealer().steal_batch_and_pop(&thief);
        assert_eq!(got, Steal::Success(0));
        assert_eq!(thief.len(), 3); // half of 8 = 4, one returned
        assert_eq!(victim.len(), 4);
        assert_eq!(thief.pop(), Some(1));
    }

    #[test]
    fn injector_roundtrip() {
        let inj = Injector::new();
        assert!(inj.is_empty());
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success("a"));
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success("b"));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn cross_thread_stealing() {
        let w = Worker::new_fifo();
        for i in 0..1000u64 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = stealers
                .into_iter()
                .map(|st| {
                    s.spawn(move || {
                        let mut sum = 0u64;
                        loop {
                            match st.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                        sum
                    })
                })
                .collect();
            let mut own = 0u64;
            while let Some(v) = w.pop() {
                own += v;
            }
            own + handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });
        assert_eq!(total, 999 * 1000 / 2);
    }
}
