//! Offline stand-in for `crossbeam`: the slice of its API this
//! workspace uses — multi-producer **multi-consumer** channels
//! ([`channel`]), work-stealing deques ([`deque`]), and scoped threads
//! ([`scope`]) — implemented on `std::sync` and `std::thread::scope`.

#![forbid(unsafe_code)]

pub mod channel;
pub mod deque;

use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`: spawned
/// closures receive a `&Scope` so they can spawn further threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

// `&thread::Scope` is Copy; make our wrapper cheap to hand to closures.
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result (or the
    /// panic payload).
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope
    /// itself (crossbeam's signature), so nested spawns work.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Create a scope for spawning borrowing threads; all are joined before
/// this returns. Mirrors `crossbeam::scope`: a panic in a spawned
/// thread surfaces as `Err` here rather than unwinding the caller.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panicked_child_reports_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
