//! MPMC channels with `crossbeam::channel`'s API shape: cloneable
//! senders *and receivers*, bounded or unbounded capacity, and
//! disconnect detection on both ends.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// Error returned when sending into a channel with no receivers left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned when receiving from an empty channel with no senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// An unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// A bounded channel: `send` blocks while `capacity` messages queue.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full.
    /// Errors if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.inner);
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .inner
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        lock(&self.inner).senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = lock(&self.inner);
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking while the channel is empty. Errors
    /// once the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.inner);
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive: `None` when currently empty (regardless of
    /// disconnect state).
    pub fn try_recv(&self) -> Option<T> {
        let value = lock(&self.inner).queue.pop_front();
        if value.is_some() {
            self.inner.not_full.notify_one();
        }
        value
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        lock(&self.inner).receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = lock(&self.inner);
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producer = thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        producer.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnects_are_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert!(rx.recv().is_err());
    }
}
